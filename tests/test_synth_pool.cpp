#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/golden.h"
#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/layers.h"

namespace fpgasim {
namespace {

using testhelpers::expect_tensor_eq;
using testhelpers::random_tensor;
using testhelpers::run_stream;

struct PoolCase {
  int channels, kernel, h, w;
  bool fuse_relu;
};

class PoolComponent : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolComponent, MatchesGoldenModel) {
  const PoolCase& tc = GetParam();
  PoolParams p;
  p.name = "pool_t";
  p.channels = tc.channels;
  p.kernel = tc.kernel;
  p.in_h = tc.h;
  p.in_w = tc.w;
  p.fuse_relu = tc.fuse_relu;

  const Tensor input = random_tensor(tc.channels, tc.h, tc.w, 91, 100);
  Tensor expected = golden_maxpool(input, tc.kernel);
  if (tc.fuse_relu) expected = golden_relu(expected);

  const Netlist nl = make_pool_component(p);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolComponent,
                         ::testing::Values(PoolCase{1, 2, 4, 4, false},
                                           PoolCase{1, 2, 4, 4, true},
                                           PoolCase{3, 2, 6, 6, true},
                                           PoolCase{2, 3, 9, 9, false},
                                           PoolCase{4, 2, 8, 8, true},
                                           PoolCase{6, 2, 10, 10, true},
                                           PoolCase{1, 4, 8, 8, false},
                                           PoolCase{5, 2, 6, 4, true}));

TEST(PoolComponent, ProcessesBackToBackImages) {
  PoolParams p;
  p.channels = 2;
  p.kernel = 2;
  p.in_h = 4;
  p.in_w = 4;
  const Netlist nl = make_pool_component(p);
  Simulator sim(nl);
  for (int image = 0; image < 3; ++image) {
    const Tensor input = random_tensor(2, 4, 4, 100 + static_cast<std::uint64_t>(image));
    const Tensor expected = golden_maxpool(input, 2);
    const auto out = run_stream(sim, input.data, expected.data.size());
    expect_tensor_eq(out, expected.data);
  }
}

TEST(PoolComponent, UsesNoDspBlocks) {
  PoolParams p;
  p.channels = 8;
  p.kernel = 2;
  p.in_h = 16;
  p.in_w = 16;
  const Netlist nl = make_pool_component(p);
  EXPECT_EQ(nl.stats().resources.dsp, 0);  // pure LUT/carry controller
}

struct DwConvCase {
  int channels, kernel, stride, h, w;
  bool fuse_relu;
};

class DwConvComponent : public ::testing::TestWithParam<DwConvCase> {};

TEST_P(DwConvComponent, MatchesGoldenModel) {
  const DwConvCase& tc = GetParam();
  DwConvParams p;
  p.name = "dw_t";
  p.channels = tc.channels;
  p.kernel = tc.kernel;
  p.stride = tc.stride;
  p.in_h = tc.h;
  p.in_w = tc.w;
  p.fuse_relu = tc.fuse_relu;

  const Tensor input = random_tensor(tc.channels, tc.h, tc.w, 211, 40);
  const auto weights = testhelpers::random_params(
      static_cast<std::size_t>(tc.channels) * tc.kernel * tc.kernel, 212, 48);
  const auto bias = testhelpers::random_params(static_cast<std::size_t>(tc.channels), 213, 48);
  Tensor expected = golden_dwconv2d(input, weights, bias, tc.kernel, tc.stride);
  if (tc.fuse_relu) expected = golden_relu(expected);

  const Netlist nl = make_dwconv_component(p, weights, bias);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DwConvComponent,
                         ::testing::Values(DwConvCase{1, 3, 1, 5, 5, false},
                                           DwConvCase{2, 3, 1, 6, 6, true},
                                           DwConvCase{3, 1, 1, 4, 4, false},
                                           DwConvCase{4, 3, 2, 7, 7, true},
                                           DwConvCase{2, 2, 2, 6, 6, false},
                                           DwConvCase{5, 3, 1, 8, 6, true}));

TEST(DwConvComponent, ProcessesBackToBackImages) {
  DwConvParams p;
  p.channels = 2;
  p.kernel = 3;
  p.in_h = 5;
  p.in_w = 5;
  const auto weights = testhelpers::random_params(2 * 3 * 3, 220, 48);
  const auto bias = testhelpers::random_params(2, 221, 48);
  const Netlist nl = make_dwconv_component(p, weights, bias);
  Simulator sim(nl);
  for (int image = 0; image < 3; ++image) {
    const Tensor input = random_tensor(2, 5, 5, 222 + static_cast<std::uint64_t>(image), 40);
    const Tensor expected = golden_dwconv2d(input, weights, bias, 3, 1);
    const auto out = run_stream(sim, input.data, expected.data.size());
    expect_tensor_eq(out, expected.data);
  }
}

TEST(DwConvComponent, UsesOneDspMac) {
  DwConvParams p;
  p.channels = 4;
  p.kernel = 3;
  p.in_h = 6;
  p.in_w = 6;
  const auto weights = testhelpers::random_params(4 * 3 * 3, 230, 48);
  const auto bias = testhelpers::random_params(4, 231, 48);
  const Netlist nl = make_dwconv_component(p, weights, bias);
  EXPECT_EQ(nl.stats().resources.dsp, 1);  // channels share a single MAC
}

struct AvgPoolCase {
  int channels, kernel_h, kernel_w, h, w;
  bool fuse_relu;
};

class AvgPoolComponent : public ::testing::TestWithParam<AvgPoolCase> {};

TEST_P(AvgPoolComponent, MatchesGoldenModel) {
  const AvgPoolCase& tc = GetParam();
  AvgPoolParams p;
  p.name = "avg_t";
  p.channels = tc.channels;
  p.kernel_h = tc.kernel_h;
  p.kernel_w = tc.kernel_w;
  p.in_h = tc.h;
  p.in_w = tc.w;
  p.fuse_relu = tc.fuse_relu;

  const Tensor input = random_tensor(tc.channels, tc.h, tc.w, 97, 120);
  Tensor expected;
  if (tc.kernel_h == tc.h && tc.kernel_w == tc.w) {
    expected = golden_global_avgpool(input);
  } else {
    expected = golden_avgpool(input, tc.kernel_h);  // square windows below
  }
  if (tc.fuse_relu) expected = golden_relu(expected);

  const Netlist nl = make_avgpool_component(p);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AvgPoolComponent,
                         ::testing::Values(
                             // square k x k windows (kernel_h == kernel_w)
                             AvgPoolCase{1, 2, 2, 4, 4, false},
                             AvgPoolCase{3, 2, 2, 6, 6, true},
                             AvgPoolCase{2, 4, 4, 8, 8, false},
                             AvgPoolCase{4, 2, 2, 8, 8, true},
                             // global average pooling (window == whole map)
                             AvgPoolCase{3, 4, 4, 4, 4, false},
                             AvgPoolCase{2, 2, 8, 2, 8, false},
                             AvgPoolCase{5, 4, 2, 4, 2, true}));

TEST(AvgPoolComponent, RoundsToNearestEven) {
  // A 1x2 window averaging {a, b} hits .5 ties: RNE must round to the even
  // quotient, not away from zero.
  AvgPoolParams p;
  p.channels = 1;
  p.kernel_h = 1;
  p.kernel_w = 2;
  p.in_h = 1;
  p.in_w = 8;
  Tensor input = Tensor::zeros(1, 1, 8);
  const std::int16_t raws[8] = {1, 2,    // mean 1.5 -> 2
                                3, 2,    // mean 2.5 -> 2
                                -1, -2,  // mean -1.5 -> -2
                                -3, -2}; // mean -2.5 -> -2
  for (int i = 0; i < 8; ++i) input.data[static_cast<std::size_t>(i)].raw = raws[i];
  const Netlist nl = make_avgpool_component(p);
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].raw, 2);
  EXPECT_EQ(out[1].raw, 2);
  EXPECT_EQ(out[2].raw, -2);
  EXPECT_EQ(out[3].raw, -2);
}

TEST(AvgPoolComponent, RejectsBadWindows) {
  AvgPoolParams p;
  p.channels = 1;
  p.kernel_h = 3;  // 3x3 = 9, not a power of two
  p.kernel_w = 3;
  p.in_h = 9;
  p.in_w = 9;
  EXPECT_THROW(make_avgpool_component(p), std::invalid_argument);
  p.kernel_h = 2;
  p.kernel_w = 2;
  p.in_h = 5;  // window does not tile the input
  p.in_w = 4;
  EXPECT_THROW(make_avgpool_component(p), std::invalid_argument);
}

TEST(AvgPoolComponent, UsesOneDspForTheShiftDivide) {
  AvgPoolParams p;
  p.channels = 2;
  p.kernel_h = 2;
  p.kernel_w = 2;
  p.in_h = 4;
  p.in_w = 4;
  const Netlist nl = make_avgpool_component(p);
  EXPECT_EQ(nl.stats().resources.dsp, 1);
}

struct UpsampleCase {
  int channels, factor, h, w;
  bool fuse_relu;
};

class UpsampleComponent : public ::testing::TestWithParam<UpsampleCase> {};

TEST_P(UpsampleComponent, MatchesGoldenModel) {
  const UpsampleCase& tc = GetParam();
  const Tensor input = random_tensor(tc.channels, tc.h, tc.w, 131, 100);
  Tensor expected = golden_upsample_nn(input, tc.factor);
  if (tc.fuse_relu) expected = golden_relu(expected);

  const Netlist nl = make_upsample_component("up_t", tc.channels, tc.h, tc.w, tc.factor,
                                             tc.fuse_relu);
  ASSERT_TRUE(nl.validate().empty());
  Simulator sim(nl);
  const auto out = run_stream(sim, input.data, expected.data.size());
  expect_tensor_eq(out, expected.data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpsampleComponent,
                         ::testing::Values(UpsampleCase{1, 2, 3, 3, false},
                                           UpsampleCase{2, 2, 4, 4, true},
                                           UpsampleCase{3, 3, 2, 2, false},
                                           UpsampleCase{2, 4, 2, 3, false},
                                           UpsampleCase{4, 2, 3, 5, true}));

TEST(UpsampleComponent, ProcessesBackToBackImages) {
  const Netlist nl = make_upsample_component("up_t", 2, 3, 3, 2);
  Simulator sim(nl);
  for (int image = 0; image < 3; ++image) {
    const Tensor input = random_tensor(2, 3, 3, 140 + static_cast<std::uint64_t>(image));
    const Tensor expected = golden_upsample_nn(input, 2);
    const auto out = run_stream(sim, input.data, expected.data.size());
    expect_tensor_eq(out, expected.data);
  }
}

TEST(UpsampleComponent, RejectsNonPositiveFactor) {
  EXPECT_THROW(make_upsample_component("up_t", 1, 2, 2, 0), std::invalid_argument);
}

TEST(ReluComponent, RectifiesStream) {
  const Netlist nl = make_relu_component("relu_t");
  Simulator sim(nl);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  const std::int16_t values[] = {-300, -1, 0, 1, 250};
  std::vector<std::int16_t> got;
  for (std::int16_t v : values) {
    sim.set_input("in_data", static_cast<std::uint16_t>(v));
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      got.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data"))));
    }
  }
  sim.set_input("in_valid", 0);
  sim.step();
  if (sim.get_output("out_valid") == 1) {
    got.push_back(static_cast<std::int16_t>(
        static_cast<std::uint16_t>(sim.get_output("out_data"))));
  }
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 0);
  EXPECT_EQ(got[3], 1);
  EXPECT_EQ(got[4], 250);
}

}  // namespace
}  // namespace fpgasim
