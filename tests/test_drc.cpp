// Per-rule DRC coverage: every registered rule gets a passing fixture and a
// seeded violation, plus waiver/cap/enforce mechanics and the checkpoint
// entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "drc/drc.h"
#include "fabric/device.h"
#include "netlist/checkpoint.h"
#include "netlist/netlist.h"
#include "netlist/phys.h"

namespace fpgasim {
namespace {

/// in(8) -> FF(8) -> out. Structurally spotless.
Netlist make_ff_netlist() {
  Netlist nl("fix");
  const NetId in = nl.add_net(8, "in");
  nl.add_port({"in", PortDir::kInput, 8, in});
  const NetId q = nl.add_net(8, "q");
  Cell ff;
  ff.type = CellType::kFf;
  ff.width = 8;
  ff.name = "r0";
  const CellId f = nl.add_cell(ff);
  nl.connect_input(f, 0, in);
  nl.connect_output(f, 0, q);
  nl.add_port({"out", PortDir::kOutput, 8, q});
  return nl;
}

/// Two FFs in series across a two-instance split: cells {0} / {1},
/// nets {0: in, 1: mid} / {2: out-ish}. Used by the routing-rule tests.
struct TwoInstanceFixture {
  Netlist nl{"pair"};
  PhysState phys;
  CellId c0 = 0, c1 = 0;
  NetId n0 = 0, n1 = 0, n2 = 0;
  std::vector<DrcInstance> instances;

  TwoInstanceFixture() {
    n0 = nl.add_net(8, "in");
    nl.add_port({"in", PortDir::kInput, 8, n0});
    Cell ff;
    ff.type = CellType::kFf;
    ff.width = 8;
    c0 = nl.add_cell(ff);
    nl.connect_input(c0, 0, n0);
    n1 = nl.add_net(8, "mid");
    nl.connect_output(c0, 0, n1);
    c1 = nl.add_cell(ff);
    nl.connect_input(c1, 0, n1);
    n2 = nl.add_net(8, "out");
    nl.connect_output(c1, 0, n2);
    nl.add_port({"out", PortDir::kOutput, 8, n2});
    phys.resize_for(nl);
    phys.cell_loc[c0] = TileCoord{2, 2};
    phys.cell_loc[c1] = TileCoord{6, 2};
    instances = {
        DrcInstance{"u0", Pblock{0, 0, 3, 7}, 0, 1, 0, 2},
        DrcInstance{"u1", Pblock{4, 0, 7, 7}, 1, 2, 2, 3},
    };
  }
};

std::size_t count_rule(const DrcReport& report, const std::string& rule) {
  return report.by_rule(rule).size();
}

// -- registry ----------------------------------------------------------------

TEST(Drc, RegistryHasAllRulesWithUniqueIds) {
  const auto& rules = drc_rules();
  EXPECT_EQ(rules.size(), 16u);
  std::vector<std::string> ids;
  for (const DrcRule* rule : rules) {
    ids.emplace_back(rule->id());
    EXPECT_NE(rule->what()[0], '\0');
    EXPECT_NE(rule->stages(), 0u);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(Drc, StructuralSubsetRunsFiveRules) {
  const Netlist nl = make_ff_netlist();
  const DrcReport report = run_structural_drc(nl);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_EQ(report.warnings(), 0u);
  EXPECT_EQ(report.rules_run(), 5u);
}

// -- net-driver --------------------------------------------------------------

TEST(DrcNetDriver, PassesOnConsistentDriver) {
  EXPECT_EQ(count_rule(run_structural_drc(make_ff_netlist()), "net-driver"), 0u);
}

TEST(DrcNetDriver, FlagsDoubleDriver) {
  Netlist nl = make_ff_netlist();
  Cell extra;
  extra.type = CellType::kConst;
  extra.width = 8;
  extra.outputs.push_back(1);  // also claims net 'q'
  nl.add_cell(extra);
  const DrcReport report = run_structural_drc(nl);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "net-driver"), 1u);
}

TEST(DrcNetDriver, FlagsDriverPinMismatch) {
  Netlist nl = make_ff_netlist();
  nl.net(1).driver_pin = 3;  // FF has no output pin 3
  EXPECT_GE(count_rule(run_structural_drc(nl), "net-driver"), 1u);
}

// -- net-dangling ------------------------------------------------------------

TEST(DrcNetDangling, FlagsSinksWithoutDriver) {
  Netlist nl = make_ff_netlist();
  const NetId orphan = nl.add_net(4, "orphan");
  nl.net(orphan).sinks.emplace_back(0, 0);  // claims the FF without hookup
  const DrcReport report = run_structural_drc(nl);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "net-dangling"), 1u);
}

TEST(DrcNetDangling, FlagsUnconnectedRequiredPin) {
  Netlist nl = make_ff_netlist();
  nl.cell(0).inputs[0] = kInvalidNet;  // FF data pin is required
  EXPECT_GE(count_rule(run_structural_drc(nl), "net-dangling"), 1u);
}

// -- net-width ---------------------------------------------------------------

TEST(DrcNetWidth, FlagsDriverWidthMismatch) {
  Netlist nl = make_ff_netlist();
  nl.net(1).width = 4;  // FF produces 8 bits
  const DrcReport report = run_structural_drc(nl);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "net-width"), 1u);
}

TEST(DrcNetWidth, FlagsTruncatingSink) {
  Netlist nl = make_ff_netlist();
  Cell narrow;
  narrow.type = CellType::kFf;
  narrow.width = 4;
  const CellId c = nl.add_cell(narrow);
  nl.connect_input(c, 0, 1);  // 8-bit 'q' into a 4-bit register
  const NetId out = nl.add_net(4, "narrow_q");
  nl.connect_output(c, 0, out);
  nl.add_port({"narrow", PortDir::kOutput, 4, out});
  EXPECT_GE(count_rule(run_structural_drc(nl), "net-width"), 1u);
}

TEST(DrcNetWidth, AllowsImplicitZeroExtension) {
  Netlist nl = make_ff_netlist();
  Cell wide;
  wide.type = CellType::kFf;
  wide.width = 16;
  const CellId c = nl.add_cell(wide);
  nl.connect_input(c, 0, 1);  // 8-bit 'q' into a 16-bit register: legal
  const NetId out = nl.add_net(16, "wide_q");
  nl.connect_output(c, 0, out);
  nl.add_port({"wide", PortDir::kOutput, 16, out});
  const DrcReport report = run_structural_drc(nl);
  EXPECT_EQ(count_rule(report, "net-width"), 0u);
  EXPECT_TRUE(report.clean());
}

// -- comb-loop ---------------------------------------------------------------

TEST(DrcCombLoop, FlagsLutCycle) {
  Netlist nl("loop");
  const NetId in = nl.add_net(1, "in");
  nl.add_port({"in", PortDir::kInput, 1, in});
  const NetId na = nl.add_net(1, "na");
  const NetId nb = nl.add_net(1, "nb");
  Cell lut;
  lut.type = CellType::kLut;
  lut.op = LutOp::kAnd;
  lut.width = 1;
  const CellId a = nl.add_cell(lut);
  const CellId b = nl.add_cell(lut);
  nl.connect_input(a, 0, in);
  nl.connect_input(a, 1, nb);
  nl.connect_output(a, 0, na);
  nl.connect_input(b, 0, in);
  nl.connect_input(b, 1, na);
  nl.connect_output(b, 0, nb);
  nl.add_port({"out", PortDir::kOutput, 1, nb});
  const DrcReport report = run_structural_drc(nl);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "comb-loop"), 1u);
}

TEST(DrcCombLoop, PassesWhenRegisterBreaksCycle) {
  Netlist nl("noloop");
  const NetId in = nl.add_net(1, "in");
  nl.add_port({"in", PortDir::kInput, 1, in});
  const NetId na = nl.add_net(1, "na");
  const NetId nq = nl.add_net(1, "nq");
  Cell lut;
  lut.type = CellType::kLut;
  lut.op = LutOp::kAnd;
  lut.width = 1;
  const CellId a = nl.add_cell(lut);
  Cell ff;
  ff.type = CellType::kFf;
  ff.width = 1;
  const CellId f = nl.add_cell(ff);
  nl.connect_input(a, 0, in);
  nl.connect_input(a, 1, nq);  // feedback through the register: fine
  nl.connect_output(a, 0, na);
  nl.connect_input(f, 0, na);
  nl.connect_output(f, 0, nq);
  nl.add_port({"out", PortDir::kOutput, 1, nq});
  const DrcReport report = run_structural_drc(nl);
  EXPECT_EQ(count_rule(report, "comb-loop"), 0u);
  EXPECT_TRUE(report.clean());
}

// -- net-dead ----------------------------------------------------------------

TEST(DrcNetDead, WarnsOnOrphanNetButStaysClean) {
  Netlist nl = make_ff_netlist();
  nl.add_net(3, "leftover");
  const DrcReport report = run_structural_drc(nl);
  EXPECT_TRUE(report.clean());  // warning severity
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(count_rule(report, "net-dead"), 1u);
  EXPECT_EQ(report.violations()[0].severity, DrcSeverity::kWarning);
}

// -- place-bounds ------------------------------------------------------------

class DrcPlace : public ::testing::Test {
 protected:
  DrcPlace() : device_(make_tiny_device()) {
    nl_ = make_ff_netlist();
    phys_.resize_for(nl_);
    phys_.cell_loc[0] = TileCoord{2, 2};
    ctx_.netlist = &nl_;
    ctx_.phys = &phys_;
    ctx_.device = &device_;
  }

  DrcReport run() { return run_drc(ctx_, kDrcPlacement); }

  Device device_;
  Netlist nl_;
  PhysState phys_;
  DrcContext ctx_;
};

TEST_F(DrcPlace, BoundsPassOnPlacedDesign) {
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(count_rule(report, "place-bounds"), 0u);
}

TEST_F(DrcPlace, BoundsFlagOutOfDeviceCell) {
  phys_.cell_loc[0] = TileCoord{999, 999};
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "place-bounds"), 1u);
}

TEST_F(DrcPlace, BoundsFlagMisalignedPhysState) {
  phys_.cell_loc.clear();
  EXPECT_GE(count_rule(run(), "place-bounds"), 1u);
}

TEST_F(DrcPlace, BoundsFlagLockedButUnplacedCell) {
  nl_.cell(0).placement_locked = true;
  phys_.cell_loc[0] = kUnplaced;
  EXPECT_GE(count_rule(run(), "place-bounds"), 1u);
}

// -- place-escape ------------------------------------------------------------

TEST_F(DrcPlace, EscapePassesInsideFootprint) {
  ctx_.instances = {DrcInstance{"u0", Pblock{0, 0, 7, 7}, 0, 1, 0, 2}};
  EXPECT_EQ(count_rule(run(), "place-escape"), 0u);
}

TEST_F(DrcPlace, EscapeFlagsCellOutsideFootprint) {
  ctx_.instances = {DrcInstance{"u0", Pblock{0, 0, 7, 7}, 0, 1, 0, 2}};
  phys_.cell_loc[0] = TileCoord{10, 10};
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "place-escape"), 1u);
}

// -- place-overlap -----------------------------------------------------------

TEST_F(DrcPlace, OverlapPassesOnDisjointPblocks) {
  ctx_.instances = {DrcInstance{"u0", Pblock{0, 0, 7, 7}, 0, 1, 0, 2},
                    DrcInstance{"u1", Pblock{8, 0, 15, 7}, 1, 1, 2, 2}};
  EXPECT_EQ(count_rule(run(), "place-overlap"), 0u);
}

TEST_F(DrcPlace, OverlapFlagsIntersectingPblocks) {
  ctx_.instances = {DrcInstance{"u0", Pblock{0, 0, 7, 7}, 0, 1, 0, 2},
                    DrcInstance{"u1", Pblock{4, 0, 11, 7}, 1, 1, 2, 2}};
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "place-overlap"), 1u);
}

// -- place-overuse -----------------------------------------------------------

TEST_F(DrcPlace, OverusePassesWhenDemandFits) {
  ctx_.instances = {DrcInstance{
      "u0", Pblock{0, 0, device_.width() - 1, device_.height() - 1}, 0, 1, 0, 2}};
  EXPECT_EQ(count_rule(run(), "place-overuse"), 0u);
}

TEST_F(DrcPlace, OveruseFlagsOversubscribedPblock) {
  nl_.cell(0).width = 4096;  // 4096 FFs cannot fit a single tile
  ctx_.instances = {DrcInstance{"u0", Pblock{2, 2, 2, 2}, 0, 1, 0, 2}};
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "place-overuse"), 1u);
}

// -- place-tile-crowding -----------------------------------------------------

TEST_F(DrcPlace, TileCrowdingPassesWithSpillRadius) {
  nl_.cell(0).width = 64;  // spreads over a few neighbouring tiles
  const DrcReport report = run();
  EXPECT_EQ(count_rule(report, "place-tile-crowding"), 0u);
}

TEST_F(DrcPlace, TileCrowdingWarnsWhenRadiusTooSmall) {
  nl_.cell(0).width = 64;
  ctx_.tile_spill_radius = 0;
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());  // warning severity
  EXPECT_GE(report.warnings(), 1u);
  EXPECT_GE(count_rule(report, "place-tile-crowding"), 1u);
}

// -- route-overuse -----------------------------------------------------------

class DrcRoute : public ::testing::Test {
 protected:
  DrcRoute() : device_(make_tiny_device()) {
    ctx_.netlist = &fix_.nl;
    ctx_.phys = &fix_.phys;
    ctx_.device = &device_;
    ctx_.instances = fix_.instances;
    // Route 'mid' (c0 at (2,2) -> c1 at (6,2)) along row 2.
    RouteInfo& mid = fix_.phys.routes[fix_.n1];
    mid.routed = true;
    for (int x = 2; x < 6; ++x) {
      mid.edges.emplace_back(TileCoord{x, 2}, TileCoord{x + 1, 2});
    }
    mid.sink_delays_ns = {0.5};
  }

  DrcReport run() { return run_drc(ctx_, kDrcRouting); }

  Device device_;
  TwoInstanceFixture fix_;
  DrcContext ctx_;
};

TEST_F(DrcRoute, OverusePassesAtDefaultCapacity) {
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(count_rule(report, "route-overuse"), 0u);
}

TEST_F(DrcRoute, OveruseWarnsOnOversubscribedEdge) {
  // Second route over the same first edge, capacity 1.
  RouteInfo& in = fix_.phys.routes[fix_.n0];
  in.routed = true;
  in.edges.emplace_back(TileCoord{2, 2}, TileCoord{3, 2});
  in.sink_delays_ns = {0.2};
  ctx_.channel_capacity = 1;
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());  // warning severity
  EXPECT_GE(count_rule(report, "route-overuse"), 1u);
}

// -- route-locked-conflict ---------------------------------------------------

TEST_F(DrcRoute, LockedConflictFlagsCrossInstanceOveruse) {
  // A locked net per instance, both crossing the same edge.
  fix_.nl.net(fix_.n0).routing_locked = true;
  fix_.nl.net(fix_.n2).routing_locked = true;
  RouteInfo& in = fix_.phys.routes[fix_.n0];
  in.routed = true;
  in.edges.emplace_back(TileCoord{2, 2}, TileCoord{3, 2});
  in.sink_delays_ns = {0.2};
  RouteInfo& out = fix_.phys.routes[fix_.n2];
  out.routed = true;
  out.edges.emplace_back(TileCoord{2, 2}, TileCoord{3, 2});
  ctx_.channel_capacity = 1;
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "route-locked-conflict"), 1u);
}

TEST_F(DrcRoute, LockedConflictPassesWithinCapacity) {
  fix_.nl.net(fix_.n0).routing_locked = true;
  fix_.nl.net(fix_.n2).routing_locked = true;
  RouteInfo& in = fix_.phys.routes[fix_.n0];
  in.routed = true;
  in.edges.emplace_back(TileCoord{2, 2}, TileCoord{3, 2});
  in.sink_delays_ns = {0.2};
  RouteInfo& out = fix_.phys.routes[fix_.n2];
  out.routed = true;
  out.edges.emplace_back(TileCoord{2, 2}, TileCoord{3, 2});
  ctx_.channel_capacity = 2;
  EXPECT_EQ(count_rule(run(), "route-locked-conflict"), 0u);
}

// -- route-escape ------------------------------------------------------------

TEST_F(DrcRoute, EscapePassesForStitchedStreamNet) {
  // 'mid' leaves u0's pblock to reach u1 — legal, its sink is external.
  fix_.nl.net(fix_.n1).routing_locked = true;
  EXPECT_EQ(count_rule(run(), "route-escape"), 0u);
}

TEST_F(DrcRoute, EscapeFlagsInternalRouteLeavingPblock) {
  // Make 'mid' instance-internal to u0, but keep its route through x=6.
  fix_.nl.net(fix_.n1).routing_locked = true;
  ctx_.instances[0].cell_end = 2;  // u0 now owns both FFs
  ctx_.instances[0].net_end = 3;
  ctx_.instances.pop_back();
  ctx_.instances.push_back(DrcInstance{"u1", Pblock{8, 8, 9, 9}, 2, 2, 3, 3});
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "route-escape"), 1u);
}

// -- route-endpoints ---------------------------------------------------------

TEST_F(DrcRoute, EndpointsPassOnCoveringRoute) {
  EXPECT_EQ(count_rule(run(), "route-endpoints"), 0u);
}

TEST_F(DrcRoute, EndpointsFlagUnroutedPlacedNet) {
  fix_.phys.routes[fix_.n1] = RouteInfo{};
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "route-endpoints"), 1u);
}

TEST_F(DrcRoute, EndpointsFlagDelayCountMismatch) {
  fix_.phys.routes[fix_.n1].sink_delays_ns = {0.5, 0.7};  // one sink only
  EXPECT_GE(count_rule(run(), "route-endpoints"), 1u);
}

TEST_F(DrcRoute, EndpointsFlagNonAdjacentEdge) {
  fix_.phys.routes[fix_.n1].edges[0] = {TileCoord{2, 2}, TileCoord{4, 2}};
  EXPECT_GE(count_rule(run(), "route-endpoints"), 1u);
}

TEST_F(DrcRoute, EndpointsFlagRouteMissingTerminal) {
  fix_.phys.cell_loc[fix_.c1] = TileCoord{6, 5};  // route still ends at (6,2)
  EXPECT_GE(count_rule(run(), "route-endpoints"), 1u);
}

TEST_F(DrcRoute, EndpointsFlagEmptyRouteSpanningTiles) {
  fix_.phys.routes[fix_.n1].edges.clear();
  EXPECT_GE(count_rule(run(), "route-endpoints"), 1u);
}

// -- cp-pins -----------------------------------------------------------------

class DrcCheckpoint : public ::testing::Test {
 protected:
  DrcCheckpoint() : device_(make_tiny_device()) {
    cp_.netlist = make_ff_netlist();
    cp_.phys.resize_for(cp_.netlist);
    cp_.phys.cell_loc[0] = TileCoord{3, 3};
    cp_.pblock = Pblock{2, 2, 8, 10};
    cp_.meta.fmax_mhz = 250.0;
    cp_.meta.critical_path_ns = 4.0;
    cp_.meta.device = device_.name();
    cp_.port_pins = {TileCoord{2, 5}, TileCoord{8, 6}};  // west in, east out
    ctx_.netlist = &cp_.netlist;
    ctx_.checkpoint = &cp_;
    ctx_.device = &device_;
  }

  DrcReport run() { return run_drc(ctx_, kDrcCheckpoint); }

  Device device_;
  Checkpoint cp_;
  DrcContext ctx_;
};

TEST_F(DrcCheckpoint, PinsPassOnBoundary) {
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(count_rule(report, "cp-pins"), 0u);
}

TEST_F(DrcCheckpoint, PinsWarnWhenInterior) {
  cp_.port_pins = {TileCoord{5, 5}, TileCoord{8, 6}};
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());  // warning severity
  EXPECT_GE(report.warnings(), 1u);
  EXPECT_EQ(count_rule(report, "cp-pins"), 1u);
}

TEST_F(DrcCheckpoint, PinsErrorOnCountMismatch) {
  cp_.port_pins = {TileCoord{2, 5}};  // two ports, one pin
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(count_rule(report, "cp-pins"), 1u);
}

TEST_F(DrcCheckpoint, PinsInfoWhenNoPlanRecorded) {
  cp_.port_pins.clear();
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.infos(), 1u);
  EXPECT_EQ(count_rule(report, "cp-pins"), 1u);
}

// -- cp-meta -----------------------------------------------------------------

TEST_F(DrcCheckpoint, MetaPassesOnConsistentCheckpoint) {
  EXPECT_EQ(count_rule(run(), "cp-meta"), 0u);
}

TEST_F(DrcCheckpoint, MetaFlagsNegativeQor) {
  cp_.meta.fmax_mhz = -1.0;
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "cp-meta"), 1u);
}

TEST_F(DrcCheckpoint, MetaFlagsDeviceMismatch) {
  cp_.meta.device = "some_other_part";
  const DrcReport report = run();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "cp-meta"), 1u);
}

TEST_F(DrcCheckpoint, MetaFlagsMisalignedPhys) {
  cp_.phys.cell_loc.clear();
  EXPECT_GE(count_rule(run(), "cp-meta"), 1u);
}

TEST_F(DrcCheckpoint, MetaWarnsOnFmaxCriticalPathDisagreement) {
  cp_.meta.critical_path_ns = 10.0;  // implies 100 MHz, meta says 250
  const DrcReport report = run();
  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.warnings(), 1u);
  EXPECT_GE(count_rule(report, "cp-meta"), 1u);
}

// -- checkpoint entry point --------------------------------------------------

TEST_F(DrcCheckpoint, RunCheckpointDrcIsCleanOnGoodComponent) {
  const DrcReport report = run_checkpoint_drc(cp_, &device_);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.rules_run(), 10u);  // all stages engaged
}

TEST_F(DrcCheckpoint, RunCheckpointDrcCatchesEscapedCell) {
  cp_.phys.cell_loc[0] = TileCoord{15, 15};  // outside the pblock
  const DrcReport report = run_checkpoint_drc(cp_, &device_);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_rule(report, "place-escape"), 1u);
}

TEST_F(DrcCheckpoint, RunCheckpointDrcWorksWithoutDevice) {
  cp_.meta.device = "some_other_part";  // needs a device context to detect
  const DrcReport report = run_checkpoint_drc(cp_);
  EXPECT_TRUE(report.clean());
}

// -- waivers, caps, enforcement ---------------------------------------------

TEST(DrcOptionsTest, WaivedRuleIsRecordedButNotCounted) {
  Netlist nl = make_ff_netlist();
  nl.net(1).driver_pin = 3;  // net-driver violation
  DrcOptions opt;
  opt.waived_rules = {"net-driver"};
  const DrcReport report = run_structural_drc(nl, opt);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_GE(report.waived(), 1u);
  ASSERT_GE(count_rule(report, "net-driver"), 1u);
  EXPECT_TRUE(report.by_rule("net-driver")[0]->waived);
}

TEST(DrcOptionsTest, PerRuleViolationCap) {
  Netlist nl = make_ff_netlist();
  for (int i = 0; i < 5; ++i) nl.add_net(1, "dead" + std::to_string(i));
  DrcOptions opt;
  opt.max_violations_per_rule = 2;
  const DrcReport report = run_structural_drc(nl, opt);
  EXPECT_EQ(count_rule(report, "net-dead"), 2u);
  EXPECT_EQ(report.suppressed(), 3u);
}

TEST(DrcEnforce, ThrowsOnErrorsOnly) {
  Netlist bad = make_ff_netlist();
  bad.net(1).driver_pin = 3;
  EXPECT_THROW(enforce_drc(run_structural_drc(bad), "test"), std::runtime_error);

  Netlist warn_only = make_ff_netlist();
  warn_only.add_net(2, "dead");
  EXPECT_NO_THROW(enforce_drc(run_structural_drc(warn_only), "test"));
}

TEST(DrcReportTest, SummaryAndListing) {
  Netlist nl = make_ff_netlist();
  nl.net(1).driver_pin = 3;
  nl.add_net(2, "dead");
  const DrcReport report = run_structural_drc(nl);
  EXPECT_NE(report.summary().find("error"), std::string::npos);
  EXPECT_NE(report.to_string().find("net-driver"), std::string::npos);
  EXPECT_NE(report.to_string().find("net-dead"), std::string::npos);
}

}  // namespace
}  // namespace fpgasim
