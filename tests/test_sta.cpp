#include <gtest/gtest.h>

#include "synth/builder.h"
#include "timing/sta.h"

namespace fpgasim {
namespace {

/// FF -> LUT -> FF chain with every cell at the same tile: critical path
/// is fully predictable from the delay model.
TEST(Sta, HandBuiltChainMatchesModel) {
  const Device device = make_tiny_device();
  const DelayModel dm;
  NetlistBuilder b("chain");
  const NetId d = b.in_port("d", 1);
  const NetId q1 = b.ff(d, kInvalidNet, 1);
  const NetId l1 = b.not1(q1, 1);
  b.out_port("q", b.ff(l1, kInvalidNet, 1));
  Netlist nl = std::move(b).take();

  PhysState phys;
  phys.resize_for(nl);
  for (CellId c = 0; c < nl.cell_count(); ++c) phys.cell_loc[c] = TileCoord{3, 3};

  const TimingResult result = run_sta(nl, phys, device, dm);
  // ff.q + wire + lut + wire + ff.setup, wires at distance 0.
  const double expected = dm.ff_clk_to_q + dm.wire_base + dm.lut + dm.wire_base + dm.ff_setup;
  EXPECT_NEAR(result.critical_path_ns, expected, 1e-9);
  EXPECT_NEAR(result.fmax_mhz, 1000.0 / expected, 1e-6);
  EXPECT_GE(result.endpoints, 2u);
  EXPECT_FALSE(result.critical_path.empty());
}

TEST(Sta, DistanceIncreasesCriticalPath) {
  const Device device = make_tiny_device();
  NetlistBuilder b("dist");
  const NetId d = b.in_port("d", 1);
  const NetId q1 = b.ff(d, kInvalidNet, 1);
  b.out_port("q", b.ff(q1, kInvalidNet, 1));
  Netlist nl = std::move(b).take();

  PhysState near, far;
  near.resize_for(nl);
  far.resize_for(nl);
  near.cell_loc = {TileCoord{3, 3}, TileCoord{4, 3}};
  far.cell_loc = {TileCoord{1, 1}, TileCoord{20, 28}};
  const double near_cp = run_sta(nl, near, device).critical_path_ns;
  const double far_cp = run_sta(nl, far, device).critical_path_ns;
  EXPECT_GT(far_cp, near_cp + 1.0);
}

TEST(Sta, SequentialElementsBreakPaths) {
  const Device device = make_tiny_device();
  // Two LUTs back to back vs. two LUTs with an FF between.
  auto build = [&](bool pipelined) {
    NetlistBuilder b("p");
    NetId x = b.in_port("d", 1);
    x = b.ff(x, kInvalidNet, 1);
    x = b.not1(x, 1);
    if (pipelined) x = b.ff(x, kInvalidNet, 1);
    x = b.not1(x, 1);
    b.out_port("q", b.ff(x, kInvalidNet, 1));
    Netlist nl = std::move(b).take();
    PhysState phys;
    phys.resize_for(nl);
    for (CellId c = 0; c < nl.cell_count(); ++c) phys.cell_loc[c] = TileCoord{5, 5};
    return run_sta(nl, phys, device).critical_path_ns;
  };
  EXPECT_GT(build(false), build(true));
}

TEST(Sta, PipelinedDspBeatsCombinationalDsp) {
  const Device device = make_tiny_device();
  auto build = [&](int stages) {
    NetlistBuilder b("dsp");
    const NetId a = b.in_port("a", 16);
    const NetId q = b.ff(a, kInvalidNet, 16);
    const NetId p = b.dsp(q, q, kInvalidNet, 8, stages, 16);
    b.out_port("o", b.ff(p, kInvalidNet, 16));
    Netlist nl = std::move(b).take();
    PhysState phys;
    phys.resize_for(nl);
    for (CellId c = 0; c < nl.cell_count(); ++c) phys.cell_loc[c] = TileCoord{4, 4};
    return run_sta(nl, phys, device).fmax_mhz;
  };
  EXPECT_GT(build(1), build(0) * 1.3);
}

TEST(Sta, RoutedDelaysOverrideEstimates) {
  const Device device = make_tiny_device();
  NetlistBuilder b("r");
  const NetId d = b.in_port("d", 1);
  const NetId q1 = b.ff(d, kInvalidNet, 1);
  b.out_port("q", b.ff(q1, kInvalidNet, 1));
  Netlist nl = std::move(b).take();
  PhysState phys;
  phys.resize_for(nl);
  phys.cell_loc = {TileCoord{2, 2}, TileCoord{3, 2}};

  const double estimated = run_sta(nl, phys, device).critical_path_ns;
  // Provide an (artificially slow) routed delay on the connecting net.
  const NetId inner = nl.cell(1).inputs[0];
  phys.routes[inner].routed = true;
  phys.routes[inner].sink_delays_ns = {5.0};
  const double routed = run_sta(nl, phys, device).critical_path_ns;
  EXPECT_GT(routed, estimated + 3.0);
}

TEST(Sta, FanoutAddsDelay) {
  const Device device = make_tiny_device();
  auto build = [&](int fanout) {
    NetlistBuilder b("f");
    const NetId d = b.in_port("d", 1);
    const NetId q = b.ff(d, kInvalidNet, 1);
    for (int i = 0; i < fanout; ++i) b.out_port("q" + std::to_string(i), b.ff(q, kInvalidNet, 1));
    Netlist nl = std::move(b).take();
    PhysState phys;
    phys.resize_for(nl);
    for (CellId c = 0; c < nl.cell_count(); ++c) phys.cell_loc[c] = TileCoord{6, 6};
    return run_sta(nl, phys, device).critical_path_ns;
  };
  EXPECT_GT(build(12), build(1));
}

TEST(Sta, DiscontinuityPenaltyInEstimates) {
  const Device device = make_tiny_device();  // IO column at x=12
  NetlistBuilder b("disc");
  const NetId d = b.in_port("d", 1);
  const NetId q1 = b.ff(d, kInvalidNet, 1);
  b.out_port("q", b.ff(q1, kInvalidNet, 1));
  Netlist nl = std::move(b).take();
  PhysState same, cross;
  same.resize_for(nl);
  cross.resize_for(nl);
  same.cell_loc = {TileCoord{4, 5}, TileCoord{10, 5}};   // distance 6
  cross.cell_loc = {TileCoord{9, 5}, TileCoord{15, 5}};  // distance 6, crosses IO
  EXPECT_GT(run_sta(nl, cross, device).critical_path_ns,
            run_sta(nl, same, device).critical_path_ns + 0.2);
}

TEST(Sta, UnplacedDesignStillAnalyzesLogicDepth) {
  NetlistBuilder b("u");
  NetId x = b.in_port("d", 8);
  x = b.ff(x, kInvalidNet, 8);
  for (int i = 0; i < 4; ++i) x = b.add(x, x, 8);
  b.out_port("q", b.ff(x, kInvalidNet, 8));
  Netlist nl = std::move(b).take();
  PhysState phys;  // empty: no placement at all
  const Device device = make_tiny_device();
  const TimingResult result = run_sta(nl, phys, device);
  EXPECT_GT(result.critical_path_ns, 1.0);  // 4 adder levels + wire estimates
  EXPECT_GT(result.fmax_mhz, 0.0);
}

TEST(Sta, MultiOutputCellPropagatesArrivalToEveryOutput) {
  const Device device = make_tiny_device();
  const DelayModel dm;
  // FF -> LUT with TWO output nets; the endpoint hangs off the SECOND one.
  // Arrival used to be propagated through outputs[0] only, leaving the
  // second net at arrival 0 and silently shortening every path through it.
  Netlist nl("dual");
  Cell src;
  src.type = CellType::kFf;
  src.width = 1;
  const CellId launch = nl.add_cell(std::move(src));
  const NetId a = nl.add_net(1);
  nl.connect_output(launch, 0, a);

  Cell dual;
  dual.type = CellType::kLut;
  dual.width = 1;
  const CellId lut = nl.add_cell(std::move(dual));
  nl.connect_input(lut, 0, a);
  const NetId o0 = nl.add_net(1);  // unloaded first output
  const NetId o1 = nl.add_net(1);  // the output that carries the path
  nl.connect_output(lut, 0, o0);
  nl.connect_output(lut, 1, o1);

  Cell capture;
  capture.type = CellType::kFf;
  capture.width = 1;
  const CellId endpoint = nl.add_cell(std::move(capture));
  nl.connect_input(endpoint, 0, o1);

  PhysState phys;
  phys.resize_for(nl);
  for (CellId c = 0; c < nl.cell_count(); ++c) phys.cell_loc[c] = TileCoord{3, 3};

  const TimingResult result = run_sta(nl, phys, device, dm);
  const double expected =
      dm.ff_clk_to_q + dm.wire_base + dm.lut + dm.wire_base + dm.ff_setup;
  EXPECT_NEAR(result.critical_path_ns, expected, 1e-9);
}

TEST(Sta, SummaryMentionsFmax) {
  TimingResult result;
  result.critical_path_ns = 2.0;
  result.fmax_mhz = 500.0;
  result.endpoints = 3;
  EXPECT_NE(result.summary().find("500.0"), std::string::npos);
}

}  // namespace
}  // namespace fpgasim
