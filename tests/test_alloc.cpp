#include <gtest/gtest.h>

#include <map>

#include "alloc/best_fit.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

TEST(BestFit, AllocatesAndFrees) {
  BestFitAllocator alloc(1024, 1);
  const auto a = alloc.allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(alloc.used_bytes(), 100u);
  alloc.free(*a);
  EXPECT_EQ(alloc.used_bytes(), 0u);
  EXPECT_EQ(alloc.block_count(), 1u);  // fully coalesced back
  EXPECT_TRUE(alloc.check().empty());
}

TEST(BestFit, PicksSmallestFittingBlock) {
  BestFitAllocator alloc(1000, 1);
  const auto a = alloc.allocate(100);  // [0,100)
  const auto b = alloc.allocate(50);   // [100,150)
  const auto c = alloc.allocate(300);  // [150,450)
  ASSERT_TRUE(a && b && c);
  alloc.free(*a);  // hole of 100
  alloc.free(*c);  // hole of 300 (coalesces with the 550 tail -> 850)
  // A 90-byte request best-fits the 100-byte hole at 0, not the tail.
  const auto d = alloc.allocate(90);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
  EXPECT_TRUE(alloc.check().empty());
}

TEST(BestFit, SplitsAndReusesRemainder) {
  BestFitAllocator alloc(256, 1);
  const auto a = alloc.allocate(100);
  const auto b = alloc.allocate(156);
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(alloc.allocate(1).has_value());  // exactly full
  EXPECT_EQ(alloc.free_bytes(), 0u);
}

TEST(BestFit, CoalescesWithBothNeighbours) {
  BestFitAllocator alloc(300, 1);
  const auto a = alloc.allocate(100);
  const auto b = alloc.allocate(100);
  const auto c = alloc.allocate(100);
  ASSERT_TRUE(a && b && c);
  alloc.free(*a);
  alloc.free(*c);
  EXPECT_EQ(alloc.free_block_count(), 2u);
  alloc.free(*b);  // merges with the hole on each side
  EXPECT_EQ(alloc.block_count(), 1u);
  EXPECT_EQ(alloc.largest_free_block(), 300u);
  EXPECT_TRUE(alloc.check().empty());
}

TEST(BestFit, DefragmentationThroughCoalescingEnablesBigAllocation) {
  BestFitAllocator alloc(1000, 1);
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 10; ++i) blocks.push_back(*alloc.allocate(100));
  EXPECT_FALSE(alloc.allocate(1).has_value());
  // Free alternating blocks: 500 bytes free but largest hole is 100.
  for (int i = 0; i < 10; i += 2) alloc.free(blocks[static_cast<std::size_t>(i)]);
  EXPECT_EQ(alloc.largest_free_block(), 100u);
  EXPECT_FALSE(alloc.allocate(200).has_value());
  // Free the rest: everything coalesces into one block again.
  for (int i = 1; i < 10; i += 2) alloc.free(blocks[static_cast<std::size_t>(i)]);
  EXPECT_EQ(alloc.largest_free_block(), 1000u);
  EXPECT_TRUE(alloc.allocate(1000).has_value());
}

TEST(BestFit, AlignmentRoundsSizes) {
  BestFitAllocator alloc(1024, 64);
  const auto a = alloc.allocate(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.used_bytes(), 64u);
  const auto b = alloc.allocate(65);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b % 64, 0u);
  EXPECT_EQ(alloc.used_bytes(), 64u + 128u);
}

TEST(BestFit, DoubleFreeThrows) {
  BestFitAllocator alloc(128, 1);
  const auto a = alloc.allocate(64);
  alloc.free(*a);
  EXPECT_THROW(alloc.free(*a), std::invalid_argument);
  EXPECT_THROW(alloc.free(999), std::invalid_argument);
}

TEST(BestFit, ExhaustionReturnsNullopt) {
  BestFitAllocator alloc(100, 1);
  EXPECT_FALSE(alloc.allocate(101).has_value());
  EXPECT_TRUE(alloc.allocate(100).has_value());
  EXPECT_FALSE(alloc.allocate(1).has_value());
}

TEST(BestFit, RandomizedStressKeepsInvariants) {
  // Property test: after any sequence of allocs/frees the block list must
  // tile the address space exactly, links must be sane and no two free
  // blocks may be adjacent.
  BestFitAllocator alloc(1 << 16, 16);
  Rng rng(2024);
  std::map<std::uint64_t, std::uint64_t> live;  // base -> size
  std::uint64_t live_bytes = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.next_double() < 0.55;
    if (do_alloc) {
      const std::uint64_t size = 1 + rng.next_below(2000);
      const auto base = alloc.allocate(size);
      if (base.has_value()) {
        const std::uint64_t rounded = (size + 15) / 16 * 16;
        ASSERT_EQ(live.count(*base), 0u);
        live[*base] = rounded;
        live_bytes += rounded;
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      live_bytes -= it->second;
      alloc.free(it->first);
      live.erase(it);
    }
    ASSERT_EQ(alloc.used_bytes(), live_bytes) << "step " << step;
    const auto problems = alloc.check();
    ASSERT_TRUE(problems.empty()) << "step " << step << ": " << problems.front();
  }
  for (const auto& [base, size] : live) alloc.free(base);
  EXPECT_EQ(alloc.used_bytes(), 0u);
  EXPECT_EQ(alloc.block_count(), 1u);
}

}  // namespace
}  // namespace fpgasim
