// End-to-end flow tests: the pre-implemented flow against the monolithic
// baseline on a small CNN, checking the paper's qualitative claims hold on
// the simulated substrate and that composition preserves functionality.
#include <gtest/gtest.h>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "stream_harness.h"

namespace fpgasim {
namespace {

using testhelpers::expect_tensor_eq;
using testhelpers::random_tensor;
using testhelpers::run_stream;

struct MiniFlow {
  Device device = make_xcku5p_sim();
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
  CheckpointDb db;

  MiniFlow() {
    model = parse_arch_def(R"(network mini
input 2 8 8
conv c1 out=4 k=3
pool p1 k=2 relu
conv c2 out=2 k=3
)");
    impl = choose_implementation(model, 12);
    groups = default_grouping(model);
    prepare_component_db(device, model, impl, groups, db);
  }
};

TEST(Flows, PreImplPipelineEndToEnd) {
  MiniFlow f;
  EXPECT_EQ(f.db.size(), 3u);

  ComposedDesign composed;
  const PreImplReport report =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed);

  EXPECT_TRUE(report.macro.success);
  EXPECT_TRUE(report.route.success);
  EXPECT_GT(report.timing.fmax_mhz, 50.0);
  EXPECT_GT(report.slowest_component_mhz, 0.0);
  // The composed design cannot beat its slowest component (paper Sec. V-E).
  EXPECT_LE(report.timing.fmax_mhz, report.slowest_component_mhz + 1.0);
  EXPECT_TRUE(composed.netlist.validate().empty());
  EXPECT_EQ(composed.instances.size(), 3u);

  // Functional equivalence after placement, relocation and routing.
  const Tensor input = random_tensor(2, 8, 8, 901);
  const auto expected = reference_inference(f.model, input);
  Simulator sim(composed.netlist);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(Flows, LockedComponentRoutesSurviveComposition) {
  MiniFlow f;
  // Snapshot one checkpoint's internal routes.
  const std::string key = group_signature(f.model, f.impl, f.groups[0]);
  const Checkpoint* cp = f.db.get(key);
  ASSERT_NE(cp, nullptr);
  std::size_t locked_edges = 0;
  for (const RouteInfo& route : cp->phys.routes) locked_edges += route.edges.size();

  ComposedDesign composed;
  const PreImplReport report =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed);
  ASSERT_TRUE(report.route.success);

  // Instance 0's nets keep at least the locked edges (translated), and the
  // relative geometry of the first route is preserved.
  const auto& inst = composed.instances[0];
  std::size_t edges_after = 0;
  for (NetId n = inst.net_offset; n < inst.net_end; ++n) {
    edges_after += composed.phys.routes[n].edges.size();
  }
  EXPECT_GE(edges_after, locked_edges);
}

TEST(Flows, MonolithicBaselineCompletesAndIsSlower) {
  MiniFlow f;
  ComposedDesign composed;
  const PreImplReport pre =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed);

  Netlist flat = build_flat_netlist(f.model, f.impl, f.groups);
  PhysState phys;
  const MonoReport mono = run_monolithic_flow(f.device, flat, phys);

  EXPECT_TRUE(mono.route.success);
  EXPECT_GT(mono.timing.fmax_mhz, 0.0);
  // Paper headline claims on this substrate:
  // (1) higher Fmax for the pre-implemented flow,
  EXPECT_GT(pre.timing.fmax_mhz, mono.timing.fmax_mhz);
  // (2) productivity: the online architecture-optimization stage is much
  //     faster than the monolithic implementation,
  EXPECT_LT(pre.total_seconds, mono.total_seconds);
  // (3) resources: phys-opt register insertion/replication can only grow
  //     the classic flow's footprint.
  EXPECT_GE(mono.stats.resources.ff, pre.stats.resources.ff);
  EXPECT_GE(mono.stats.resources.lut, pre.stats.resources.lut);
  EXPECT_EQ(mono.stats.resources.dsp, pre.stats.resources.dsp);
}

TEST(Flows, CompiledVerifyGatePassesInBothFlows) {
  MiniFlow f;

  PreImplOptions pre_opt;
  pre_opt.compiled_verify = true;
  pre_opt.compiled_verify_cycles = 16;
  ComposedDesign composed;
  const PreImplReport pre =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed, pre_opt);
  EXPECT_TRUE(pre.compiled_verify_ok);
  EXPECT_GT(pre.compiled_verify_seconds, 0.0);

  Netlist flat = build_flat_netlist(f.model, f.impl, f.groups);
  PhysState phys;
  MonoOptions mono_opt;
  mono_opt.compiled_verify = true;
  mono_opt.compiled_verify_cycles = 16;
  const MonoReport mono = run_monolithic_flow(f.device, flat, phys, mono_opt);
  EXPECT_TRUE(mono.compiled_verify_ok);
  EXPECT_GT(mono.compiled_verify_seconds, 0.0);
}

TEST(Flows, CompiledVerifyGateDefaultsOff) {
  MiniFlow f;
  ComposedDesign composed;
  const PreImplReport pre =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed);
  EXPECT_FALSE(pre.compiled_verify_ok);
  EXPECT_EQ(pre.compiled_verify_seconds, 0.0);
}

TEST(Flows, ComponentMatchingFailsWithoutDatabase) {
  MiniFlow f;
  CheckpointDb empty;
  ComposedDesign composed;
  EXPECT_THROW(run_preimpl_cnn(f.device, f.model, f.impl, f.groups, empty, composed),
               std::runtime_error);
}

TEST(Flows, DatabaseReuseSkipsReimplementation) {
  MiniFlow f;
  // Second call: everything already cached.
  const std::size_t built_again =
      prepare_component_db(f.device, f.model, f.impl, f.groups, f.db);
  EXPECT_EQ(built_again, 0u);
}

TEST(Flows, ReplicatedComponentsShareOneCheckpoint) {
  const Device device = make_xcku5p_sim();
  // Two identical FC layers (8 -> 8): one checkpoint, two instances.
  const CnnModel model = parse_arch_def(R"(network twins
input 8 1 1
fc f1 out=8
fc f2 out=8
)");
  ModelImpl impl = choose_implementation(model, 8);
  // Identical configs require identical weight storage for reuse; the
  // paper's replicated components stream coefficients for the same reason.
  impl.layers[1].materialize = false;
  impl.layers[2].materialize = false;
  impl.layers[1].ic_par = impl.layers[2].ic_par;
  impl.layers[1].oc_par = impl.layers[2].oc_par;
  const auto groups = default_grouping(model);
  ASSERT_EQ(group_signature(model, impl, groups[0]),
            group_signature(model, impl, groups[1]));
  CheckpointDb db;
  const std::size_t built = prepare_component_db(device, model, impl, groups, db);
  EXPECT_EQ(built, 1u);  // implemented exactly once (the reuse claim)
  EXPECT_EQ(db.size(), 1u);

  ComposedDesign composed;
  const PreImplReport report = run_preimpl_cnn(device, model, impl, groups, db, composed);
  EXPECT_TRUE(report.macro.success);
  EXPECT_EQ(composed.instances.size(), 2u);
  // Relocation must place the two copies at non-overlapping anchors.
  EXPECT_FALSE(composed.instances[0].footprint.overlaps(composed.instances[1].footprint));
}

TEST(Flows, StitchIsSmallShareOfArchitectureOptimization) {
  MiniFlow f;
  ComposedDesign composed;
  const PreImplReport report =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed);
  // Paper: stitching is 5-9% of the flow; allow a loose upper bound here.
  EXPECT_LT(report.stitch_fraction(), 0.6);
  EXPECT_GT(report.function_opt_seconds, 0.0);
}

TEST(Flows, PreImplLeNetFinishesDrcClean) {
  // LeNet-5 through the full pre-implemented pipeline: every DRC gate
  // (post-compose, post-placement, post-routing) must report zero errors.
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 16);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);

  ComposedDesign composed;
  const PreImplReport report = run_preimpl_cnn(device, model, impl, groups, db, composed);
  EXPECT_TRUE(report.route.success);
  EXPECT_TRUE(report.drc_compose.clean()) << report.drc_compose.to_string();
  EXPECT_TRUE(report.drc_place.clean()) << report.drc_place.to_string();
  EXPECT_TRUE(report.drc.clean()) << report.drc.to_string();
  EXPECT_GT(report.drc.rules_run(), 0u);
  EXPECT_GE(report.drc_seconds, 0.0);
}

TEST(Flows, MonolithicLeNetFinishesDrcClean) {
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 16);
  const auto groups = default_grouping(model);

  Netlist flat = build_flat_netlist(model, impl, groups);
  PhysState phys;
  const MonoReport mono = run_monolithic_flow(device, flat, phys);
  EXPECT_TRUE(mono.route.success);
  EXPECT_TRUE(mono.drc_place.clean()) << mono.drc_place.to_string();
  EXPECT_TRUE(mono.drc.clean()) << mono.drc.to_string();
  EXPECT_GT(mono.drc.rules_run(), 0u);
}

TEST(Flows, DrcGateCanBeDisabled) {
  MiniFlow f;
  ComposedDesign composed;
  PreImplOptions opt;
  opt.drc = false;
  const PreImplReport report =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed, opt);
  EXPECT_TRUE(report.route.success);
  EXPECT_EQ(report.drc.rules_run(), 0u);  // gates skipped entirely
}

struct ResblockFlow {
  Device device = make_xcku5p_sim();
  CnnModel model = make_resblock_net();
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
  CheckpointDb db;

  ResblockFlow() {
    impl = choose_implementation(model, 16);
    groups = default_grouping(model);
    prepare_component_db(device, model, impl, groups, db);
  }
};

TEST(Flows, ResblockPreImplEndToEndBitMatchesGolden) {
  // The branching tentpole: conv -> {identity skip, conv-conv} -> add ->
  // pool+relu -> fc through compose, relocation placement and routing,
  // with a stream fork on the skip connection. Every DRC gate must be
  // clean and the composed simulation bit-exact against the golden DFG.
  ResblockFlow f;
  // 6 group components (c1, c2a, c2b, add1, p1+relu, f1) + the 2-way fork.
  EXPECT_EQ(f.db.size(), 7u);
  ASSERT_NE(f.db.get(fork_signature(2)), nullptr);

  ComposedDesign composed;
  const PreImplReport report =
      run_preimpl_cnn(f.device, f.model, f.impl, f.groups, f.db, composed);
  EXPECT_TRUE(report.macro.success);
  EXPECT_TRUE(report.route.success);
  EXPECT_TRUE(report.drc_compose.clean()) << report.drc_compose.to_string();
  EXPECT_TRUE(report.drc_place.clean()) << report.drc_place.to_string();
  EXPECT_TRUE(report.drc.clean()) << report.drc.to_string();
  EXPECT_EQ(composed.instances.size(), 7u);
  // The DFG macro-nets cover all 7 stream edges (c1->fork, fork->c2a,
  // fork->add1, c2a->c2b, c2b->add1, add1->p1, p1->f1).
  EXPECT_EQ(composed.macro_nets.size(), 7u);

  const Tensor input = testhelpers::random_tensor(2, 8, 8, 905);
  const auto expected = reference_inference(f.model, input);
  Simulator sim(composed.netlist);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(Flows, ResblockMonolithicBaselineBitMatchesGolden) {
  ResblockFlow f;
  Netlist flat = build_flat_netlist(f.model, f.impl, f.groups);
  EXPECT_TRUE(flat.validate().empty());
  PhysState phys;
  const MonoReport mono = run_monolithic_flow(f.device, flat, phys);
  EXPECT_TRUE(mono.route.success);
  EXPECT_TRUE(mono.drc_place.clean()) << mono.drc_place.to_string();
  EXPECT_TRUE(mono.drc.clean()) << mono.drc.to_string();

  const Tensor input = testhelpers::random_tensor(2, 8, 8, 906);
  const auto expected = reference_inference(f.model, input);
  Simulator sim(flat);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(Flows, ResblockMatchingErrorNamesTheGroupLayers) {
  ResblockFlow f;
  CheckpointDb empty;
  ComposedDesign composed;
  try {
    run_preimpl_cnn(f.device, f.model, f.impl, f.groups, empty, composed);
    FAIL() << "expected component matching to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // The first unmatched group is c1: the message must name the layer and
    // its kind, not just the opaque signature.
    EXPECT_NE(what.find("c1 (conv)"), std::string::npos) << what;
    EXPECT_NE(what.find("prepare_component_db"), std::string::npos) << what;
  }
}

TEST(Flows, ChainWrapperStillComposesChains) {
  // Existing chain-based callers go through the thin wrapper; it must
  // behave exactly like a two-edge component graph.
  MiniFlow f;
  std::vector<const Checkpoint*> chain;
  std::vector<std::string> names;
  for (const auto& group : f.groups) {
    chain.push_back(f.db.get(group_signature(f.model, f.impl, group)));
    names.push_back(chain.back()->netlist.name());
  }
  ComposedDesign composed;
  const PreImplReport report = run_preimpl_flow(f.device, chain, names, composed);
  EXPECT_TRUE(report.route.success);
  EXPECT_EQ(composed.instances.size(), 3u);

  const Tensor input = testhelpers::random_tensor(2, 8, 8, 907);
  const auto expected = reference_inference(f.model, input);
  Simulator sim(composed.netlist);
  const auto out = run_stream(sim, input.data, expected.size());
  expect_tensor_eq(out, expected);
}

TEST(Flows, PhysOptCanBeDisabled) {
  MiniFlow f;
  Netlist flat = build_flat_netlist(f.model, f.impl, f.groups);
  const ResourceVec before = flat.stats().resources;
  PhysState phys;
  MonoOptions opt;
  opt.phys_opt = false;
  const MonoReport mono = run_monolithic_flow(f.device, flat, phys, opt);
  EXPECT_EQ(mono.inserted_ffs, 0u);
  EXPECT_EQ(mono.replicated_drivers, 0u);
  EXPECT_EQ(mono.stats.resources, before);
}

}  // namespace
}  // namespace fpgasim
