#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "flow/build.h"
#include "flow/checkpoint_db.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

Checkpoint tiny_checkpoint(const std::string& name, double fmax, double seconds) {
  NetlistBuilder b(name);
  const NetId a = b.in_port("in_data", 16);
  b.out_port("out_data", b.ff(a, kInvalidNet, 16));
  Checkpoint cp;
  cp.netlist = std::move(b).take();
  cp.phys.resize_for(cp.netlist);
  cp.pblock = Pblock{0, 0, 3, 3};
  cp.meta.fmax_mhz = fmax;
  cp.meta.implement_seconds = seconds;
  return cp;
}

TEST(CheckpointDb, PutGetContains) {
  CheckpointDb db;
  EXPECT_FALSE(db.contains("a"));
  EXPECT_EQ(db.get("a"), nullptr);
  db.put("a", tiny_checkpoint("a", 400, 1.5));
  EXPECT_TRUE(db.contains("a"));
  ASSERT_NE(db.get("a"), nullptr);
  EXPECT_DOUBLE_EQ(db.get("a")->meta.fmax_mhz, 400);
  EXPECT_EQ(db.size(), 1u);
}

TEST(CheckpointDb, PutReplacesExisting) {
  CheckpointDb db;
  db.put("a", tiny_checkpoint("a", 400, 1.0));
  db.put("a", tiny_checkpoint("a", 500, 2.0));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.get("a")->meta.fmax_mhz, 500);
}

TEST(CheckpointDb, TracksFunctionOptimizationTime) {
  CheckpointDb db;
  db.put("a", tiny_checkpoint("a", 400, 1.5));
  db.put("b", tiny_checkpoint("b", 300, 2.5));
  EXPECT_DOUBLE_EQ(db.total_implement_seconds(), 4.0);
}

TEST(CheckpointDb, KeysSorted) {
  CheckpointDb db;
  db.put("zeta", tiny_checkpoint("z", 1, 1));
  db.put("alpha", tiny_checkpoint("a", 1, 1));
  const auto keys = db.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zeta");
}

TEST(CheckpointDb, SaveAndLoadDirectory) {
  const std::string dir = testing::TempDir() + "/fdcp_db";
  std::filesystem::remove_all(dir);
  CheckpointDb db;
  db.put("conv_i1x4x4_o2_k3", tiny_checkpoint("conv", 420, 3.0));
  db.put("pool_i2x2x2_k2", tiny_checkpoint("pool", 510, 1.0));
  db.save_dir(dir);

  CheckpointDb restored;
  EXPECT_EQ(restored.load_dir(dir), 2u);
  EXPECT_EQ(restored.size(), 2u);
  ASSERT_TRUE(restored.contains("conv_i1x4x4_o2_k3"));
  EXPECT_DOUBLE_EQ(restored.get("conv_i1x4x4_o2_k3")->meta.fmax_mhz, 420);
  EXPECT_EQ(restored.get("conv_i1x4x4_o2_k3")->netlist.name(), "conv");
}

TEST(CheckpointDb, LoadFromMissingDirectoryIsEmpty) {
  CheckpointDb db;
  EXPECT_EQ(db.load_dir("/nonexistent/db/dir"), 0u);
}

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CheckpointDb, BranchingDfgDatabaseRoundTripsByteIdentical) {
  // Build the component database for a branching model (residual blocks
  // introduce stream-fork checkpoints alongside the group components),
  // round-trip it through save_dir/load_dir, and require the re-saved
  // files to match the originals byte for byte.
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_resblock_net();
  const ModelImpl impl = choose_implementation(model, 200);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);
  ASSERT_GT(db.size(), groups.size()) << "expected fork checkpoints beyond the groups";
  ASSERT_TRUE(db.contains(fork_signature(2)));

  const std::string dir = testing::TempDir() + "/fdcp_resblock";
  const std::string dir2 = testing::TempDir() + "/fdcp_resblock_resaved";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
  db.save_dir(dir);

  CheckpointDb restored;
  EXPECT_EQ(restored.load_dir(dir), db.size());
  EXPECT_EQ(restored.keys(), db.keys());
  for (const std::string& key : db.keys()) {
    ASSERT_NE(restored.get(key), nullptr) << key;
    EXPECT_EQ(restored.get(key)->netlist.name(), db.get(key)->netlist.name());
    EXPECT_EQ(restored.get(key)->pblock, db.get(key)->pblock);
  }

  restored.save_dir(dir2);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto resaved = std::filesystem::path(dir2) / entry.path().filename();
    ASSERT_TRUE(std::filesystem::exists(resaved)) << resaved;
    EXPECT_EQ(file_bytes(entry.path()), file_bytes(resaved))
        << entry.path().filename() << " changed across a load/save round trip";
    ++files;
  }
  EXPECT_EQ(files, db.size());
}

TEST(CheckpointDb, SanitizesKeysForFilenames) {
  const std::string dir = testing::TempDir() + "/fdcp_weird";
  std::filesystem::remove_all(dir);
  CheckpointDb db;
  db.put("conv/i=2 x*8", tiny_checkpoint("weird", 100, 1.0));
  db.save_dir(dir);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".fdcp");
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(CheckpointDb, DistinctKeysNeverShareAFilename) {
  // Regression: "conv/a" and "conv:a" both sanitize to "conv_a"; the old
  // key -> filename mapping silently overwrote the first checkpoint with
  // the second. The hash suffix keeps the mapping injective.
  const std::string dir = testing::TempDir() + "/fdcp_collide";
  std::filesystem::remove_all(dir);
  CheckpointDb db;
  db.put("conv/a", tiny_checkpoint("slash", 100, 1.0));
  db.put("conv:a", tiny_checkpoint("colon", 200, 2.0));
  db.save_dir(dir);

  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".fdcp");
    ++files;
  }
  EXPECT_EQ(files, 2u) << "colliding sanitized keys must map to distinct files";

  CheckpointDb restored;
  EXPECT_EQ(restored.load_dir(dir), 2u);
  // Both checkpoints survive the round trip (keys become the mangled
  // stems, but no content is lost).
  std::vector<std::string> names;
  for (const std::string& key : restored.keys()) {
    names.push_back(restored.get(key)->netlist.name());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"colon", "slash"}));
}

TEST(CheckpointDb, CleanKeyFilenamesStayStable) {
  // Filename-clean keys (every real group/fork signature) keep their
  // historical "<key>.fdcp" layout: no hash suffix, byte-stable on disk.
  const std::string dir = testing::TempDir() + "/fdcp_clean";
  std::filesystem::remove_all(dir);
  CheckpointDb db;
  db.put("conv_i1x4x4_o2_k3", tiny_checkpoint("conv", 420, 3.0));
  db.save_dir(dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/conv_i1x4x4_o2_k3.fdcp"));
}

}  // namespace
}  // namespace fpgasim
