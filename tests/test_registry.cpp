// Layer-descriptor registry invariants.
//
// Three gates keep the refactor honest:
//  1. Completeness: every LayerKind has a well-formed registry entry in
//     enumerator order, and the grammar keyword round-trips.
//  2. No stray dispatch: `switch`/`case` over LayerKind must not reappear
//     outside the registry itself (and the kernel library) — a source
//     scan over the whole tree enforces the single-table architecture.
//  3. Byte-stability: the checkpoint content hashes of every component of
//     the three pre-refactor models (lenet / resblock / vgg16), in
//     request order, are pinned to the values the pre-registry code
//     produced. A change here silently invalidates every stored
//     checkpoint database, so it must be deliberate.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cnn/registry.h"
#include "cnn/zoo.h"
#include "flow/build.h"
#include "flow/store.h"

namespace fpgasim {
namespace {

TEST(Registry, CoversEveryKindInOrder) {
  const auto& registry = layer_registry();
  ASSERT_EQ(registry.size(), static_cast<std::size_t>(kLayerKindCount));
  std::set<std::string> keywords;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const LayerTraits& traits = registry[i];
    EXPECT_EQ(static_cast<std::size_t>(traits.kind), i);
    EXPECT_STRNE(traits.keyword, "?") << "kind " << i << " has no keyword";
    EXPECT_TRUE(keywords.insert(traits.keyword).second)
        << "duplicate keyword '" << traits.keyword << "'";
    // The keyword is the parser's entry point and must round-trip.
    const LayerTraits* by_keyword = layer_traits_by_keyword(traits.keyword);
    ASSERT_NE(by_keyword, nullptr);
    EXPECT_EQ(by_keyword->kind, traits.kind);
    EXPECT_EQ(&layer_traits(traits.kind), &traits);
    // Serialization exists for every kind; inference and synthesis for
    // every kind but the model-input pseudo layer.
    EXPECT_NE(traits.emit, nullptr);
    if (traits.source) {
      EXPECT_EQ(traits.synth, nullptr);
      EXPECT_EQ(traits.golden, nullptr);
    } else {
      EXPECT_NE(traits.infer, nullptr);
      EXPECT_NE(traits.synth, nullptr) << traits.keyword;
      EXPECT_NE(traits.golden, nullptr) << traits.keyword;
    }
  }
  EXPECT_EQ(layer_traits_by_keyword("no_such_layer"), nullptr);
  // to_string is the signature vocabulary and resolves through the table.
  EXPECT_STREQ(to_string(LayerKind::kDwConv), "dwconv");
  EXPECT_STREQ(to_string(LayerKind::kGlobalAvgPool), "gavgpool");
}

TEST(Registry, NoLayerKindDispatchOutsideRegistry) {
  // The point of the registry: per-kind behaviour lives in exactly one
  // table. A `case LayerKind::` anywhere else means scattered dispatch is
  // creeping back in. Allowed: the registry itself and the kernel
  // library it points into.
  const std::set<std::string> allowed = {"src/cnn/registry.cpp", "src/synth/layers.cpp"};
  const std::filesystem::path root(FPGASIM_SOURCE_DIR);
  std::vector<std::string> offenders;
  for (const char* top : {"src", "tools", "examples", "bench"}) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(root / top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".h") continue;
      std::ifstream in(entry.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string text = buffer.str();
      if (text.find("case LayerKind::") == std::string::npos &&
          text.find("switch (layer.kind") == std::string::npos) {
        continue;
      }
      const std::string rel =
          std::filesystem::relative(entry.path(), root).generic_string();
      if (allowed.count(rel) == 0) offenders.push_back(rel);
    }
  }
  EXPECT_TRUE(offenders.empty())
      << "LayerKind dispatch outside the registry: " << [&] {
           std::string joined;
           for (const std::string& f : offenders) joined += f + " ";
           return joined;
         }();
}

struct Fingerprint {
  const char* key;
  const char* hash;
};

/// Pinned pre-refactor content hashes: CheckpointStore::content_hash over
/// the component_requests of each bundled model, in request order. These
/// are the identities of every checkpoint a pre-registry database holds —
/// byte-stability of signature text, weight seeds and netlist bytes all
/// collapse into this one comparison.
void expect_fingerprints(const char* model_name,
                         const std::vector<Fingerprint>& expected) {
  const ZooEntry* entry = find_zoo_model(model_name);
  ASSERT_NE(entry, nullptr) << model_name;
  const CnnModel model = entry->make();
  const ModelImpl impl = choose_implementation(model, entry->dsp_budget, entry->max_tile);
  const auto groups = default_grouping(model);
  const std::string fabric = fabric_signature(make_xcku5p_sim());
  const auto requests = component_requests(model, impl, groups);
  ASSERT_EQ(requests.size(), expected.size()) << model_name;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].key, expected[i].key) << model_name << " request " << i;
    EXPECT_EQ(CheckpointStore::content_hash(requests[i].key, fabric).hex(),
              expected[i].hash)
        << model_name << " component '" << requests[i].key << "'";
  }
}

TEST(Registry, LenetCheckpointHashesAreByteStable) {
  expect_fingerprints(
      "lenet",
      {
          {"conv_i1x32x32_o6_k5s1_p1x6_w1002", "2127e7238de1f2f35785c8347b7919bf"},
          {"pool_i6x28x28_o0_k2s1_p1x1_r", "89fdaa618f6f22fdf48bbe50d163ee59"},
          {"conv_i6x14x14_o16_k5s1_p6x4_w1006", "bfa1929e97e4d66c19bf497151297b51"},
          {"pool_i16x10x10_o0_k2s1_p1x1_r", "563157d7f411d3475a0df050cb857cc3"},
          {"fc_i16x5x5_o120_k1s1_p4x2_w1010", "ffd578ebcc9dc2d13be7f010e1ad5d70"},
          {"fc_i120x1x1_o10_k1s1_p2x1_w1012", "13a6aead33fc2c5af7f45653772c6b3b"},
      });
}

TEST(Registry, ResblockCheckpointHashesAreByteStable) {
  expect_fingerprints(
      "resblock",
      {
          {"conv_i2x8x8_o4_k3s1_p2x4_w1002", "a8e81235edeb2aa393c3e8315685517f"},
          {"conv_i4x6x6_o4_k1s1_p4x2_w1004", "18e28f3041e47f37087265d960d38a68"},
          {"conv_i4x6x6_o4_k1s1_p4x2_w1006", "847bbe4a3553a6ce021a6700489e8967"},
          {"add_i4x6x6_i4x6x6_o4", "6a0452e624bf609baa706e8a8548e6b1"},
          {"pool_i4x6x6_o0_k2s1_p1x1_r", "0c29749fc9cb4db7d8544a8c792a6473"},
          {"fc_i4x3x3_o8_k1s1_p4x1_w1012", "2d1d9db0b780dafc6d723151ac2367e8"},
          {"fork_x2_w16", "817e6268f2f3588af48435a9856b9b64"},
      });
}

TEST(Registry, Vgg16CheckpointHashesAreByteStable) {
  expect_fingerprints(
      "vgg16",
      {
          {"conv_i3x224x224_o64_k3s1_p1x2_t14x14_r_w1002",
           "f834cfe01a8345b3e98184fc02063fa4"},
          {"conv_i64x224x224_o64_k3s1_p8x4_t14x14_r_w1004",
           "749720ea16dcbd681ad350dfa22a968e"},
          {"pool_i64x224x224_o0_k2s1_p1x1_t14x14", "b0f76b544f473d60bf88ca5c0edb5e39"},
          {"conv_i64x112x112_o128_k3s1_p8x2_t14x14_r", "a3f2fdf54646b4d1d764bc4dee51aa41"},
          {"conv_i128x112x112_o128_k3s1_p8x4_t14x14_r", "78e5e8a134d83e9178160e820de4f60b"},
          {"pool_i128x112x112_o0_k2s1_p1x1_t14x14", "dcc20d946e3567612f817704da789561"},
          {"conv_i128x56x56_o256_k3s1_p8x2_t14x14_r", "f2c7cf54b84d7ff49c64e0d89b68744f"},
          {"conv_i256x56x56_o256_k3s1_p8x4_t14x14_r", "1b83c3272842af5b0ae68ece7df8e81f"},
          {"pool_i256x56x56_o0_k2s1_p1x1_t14x14", "c4052656e0ea0814781f606c2c5ade92"},
          {"conv_i256x28x28_o512_k3s1_p8x2_t14x14_r", "44b78d76c55b6446459a783e587bcd43"},
          {"conv_i512x28x28_o512_k3s1_p8x4_t14x14_r", "0e5bd177ed04df5bdbd3a7c8e223fa6d"},
          {"pool_i512x28x28_o0_k2s1_p1x1_t14x14", "64067309c253e8e21b91a0fd695a198b"},
          {"conv_i512x14x14_o512_k3s1_p4x2_r", "9401bed20c35f674e80034fcabdf4ed9"},
          {"pool_i512x14x14_o0_k2s1_p1x1", "f238c0df5f83d4cd9a4b5babb37c19c6"},
          {"fc_i512x7x7_o4096_k1s1_p2x1", "14e9ff53c89eb78736327a4b596df809"},
          {"fc_i4096x1x1_o4096_k1s1_p2x1", "6d6a0f68570454d544c6f4dae9860468"},
          {"fc_i4096x1x1_o1000_k1s1_p2x1", "a2f157ae52f5b7a7587bb13b4eb5f9b4"},
      });
}

TEST(Registry, PointwiseFusesIntoDepthwise) {
  // The grouping hook: a 1x1/s1 conv directly after a dwconv shares its
  // component; any other conv shape does not.
  const CnnModel model = make_mobilenet_v1();
  const auto groups = default_grouping(model);
  // Locate dw1: its group must also contain the following pointwise conv.
  int dw1 = -1;
  for (std::size_t i = 0; i < model.layers().size(); ++i) {
    if (model.layers()[i].name == "dw1") dw1 = static_cast<int>(i);
  }
  ASSERT_GE(dw1, 0);
  bool fused = false;
  for (const auto& group : groups) {
    for (std::size_t pos = 0; pos < group.size(); ++pos) {
      if (group[pos] != dw1) continue;
      ASSERT_LT(pos + 1, group.size()) << "dwconv ends its group";
      EXPECT_EQ(model.layers()[static_cast<std::size_t>(group[pos + 1])].name, "pw1");
      fused = true;
    }
  }
  EXPECT_TRUE(fused);
  // The signature of the fused group carries both stages.
  const ModelImpl impl = choose_implementation(model, 64, 32);
  bool saw_pair = false;
  for (const auto& group : groups) {
    const std::string sig = group_signature(model, impl, group);
    if (sig.find("dwconv") != std::string::npos) {
      EXPECT_NE(sig.find("__conv"), std::string::npos) << sig;
      saw_pair = true;
    }
  }
  EXPECT_TRUE(saw_pair);
}

}  // namespace
}  // namespace fpgasim
