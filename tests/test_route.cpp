#include <gtest/gtest.h>

#include <map>

#include "route/router.h"
#include "synth/builder.h"

namespace fpgasim {
namespace {

/// Builds a netlist of `n` FF pairs (driver -> sink) placed at the given
/// coordinates; net i connects pair i.
struct PointToPoint {
  Netlist netlist{"p2p"};
  PhysState phys;

  void add_pair(TileCoord from, TileCoord to) {
    Cell drv;
    drv.type = CellType::kFf;
    drv.width = 1;
    const CellId d = netlist.add_cell(std::move(drv));
    Cell snk;
    snk.type = CellType::kFf;
    snk.width = 1;
    const CellId s = netlist.add_cell(std::move(snk));
    const NetId n = netlist.add_net(1);
    netlist.connect_output(d, 0, n);
    netlist.connect_input(s, 0, n);
    phys.resize_for(netlist);
    phys.cell_loc[d] = from;
    phys.cell_loc[s] = to;
  }
};

/// Checks a route's edges form a connected tree containing both endpoints.
void expect_connected(const RouteInfo& route, TileCoord from, TileCoord to) {
  ASSERT_TRUE(route.routed);
  if (from == to) return;
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> adjacency;
  for (const auto& [a, b] : route.edges) {
    adjacency[{a.x, a.y}].push_back({b.x, b.y});
    adjacency[{b.x, b.y}].push_back({a.x, a.y});
    // 4-neighbour edges only.
    EXPECT_EQ(std::abs(a.x - b.x) + std::abs(a.y - b.y), 1);
  }
  std::vector<std::pair<int, int>> stack{{from.x, from.y}};
  std::set<std::pair<int, int>> seen{{from.x, from.y}};
  while (!stack.empty()) {
    auto v = stack.back();
    stack.pop_back();
    for (auto& u : adjacency[v]) {
      if (seen.insert(u).second) stack.push_back(u);
    }
  }
  EXPECT_TRUE(seen.count({to.x, to.y})) << "sink unreachable";
}

TEST(Router, RoutesPointToPoint) {
  const Device device = make_tiny_device();
  PointToPoint design;
  design.add_pair(TileCoord{2, 2}, TileCoord{18, 20});
  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.nets_routed, 1u);
  expect_connected(design.phys.routes[0], TileCoord{2, 2}, TileCoord{18, 20});
  // Manhattan-optimal length on an uncongested grid.
  EXPECT_EQ(design.phys.routes[0].edges.size(), 34u);
  EXPECT_GT(design.phys.routes[0].sink_delays_ns[0], 0.0);
}

TEST(Router, SameTileNetNeedsNoEdges) {
  const Device device = make_tiny_device();
  PointToPoint design;
  design.add_pair(TileCoord{5, 5}, TileCoord{5, 5});
  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(design.phys.routes[0].edges.empty());
  EXPECT_GT(design.phys.routes[0].sink_delays_ns[0], 0.0);  // wire_base
}

TEST(Router, MultiFanoutBuildsSteinerTree) {
  const Device device = make_tiny_device();
  Netlist nl("fan");
  PhysState phys;
  Cell drv;
  drv.type = CellType::kFf;
  const CellId d = nl.add_cell(std::move(drv));
  const NetId n = nl.add_net(1);
  nl.connect_output(d, 0, n);
  std::vector<TileCoord> sinks{{10, 2}, {10, 30}, {20, 16}};
  std::vector<CellId> sink_cells;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    Cell c;
    c.type = CellType::kFf;
    const CellId s = nl.add_cell(std::move(c));
    nl.connect_input(s, 0, n);
    sink_cells.push_back(s);
  }
  phys.resize_for(nl);
  phys.cell_loc[d] = TileCoord{2, 16};
  for (std::size_t i = 0; i < sinks.size(); ++i) phys.cell_loc[sink_cells[i]] = sinks[i];

  const RouteResult result = route_design(device, nl, phys);
  ASSERT_TRUE(result.success);
  for (const TileCoord& sink : sinks) expect_connected(phys.routes[n], phys.cell_loc[d], sink);
  ASSERT_EQ(phys.routes[n].sink_delays_ns.size(), 3u);
  for (double delay : phys.routes[n].sink_delays_ns) EXPECT_GT(delay, 0.0);
  // The tree shares trunk wiring: cheaper than three independent routes.
  std::size_t independent = 0;
  for (const TileCoord& s : sinks) {
    independent += static_cast<std::size_t>(std::abs(s.x - 2) + std::abs(s.y - 16));
  }
  EXPECT_LT(phys.routes[n].edges.size(), independent);
}

TEST(Router, NegotiationResolvesCongestion) {
  const Device device = make_tiny_device();
  PointToPoint design;
  // 24 parallel nets through the same corridor with capacity 3: PathFinder
  // must spread them across rows without overuse.
  for (int i = 0; i < 24; ++i) {
    design.add_pair(TileCoord{2, 10 + i % 4}, TileCoord{20, 10 + i % 4});
  }
  RouteOptions opt;
  opt.channel_capacity = 3;
  opt.max_iterations = 80;
  opt.history_factor = 0.8;
  const RouteResult result = route_design(device, design.netlist, design.phys, opt);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.max_overuse, 0) << "negotiation left overused channels";
  EXPECT_GT(result.iterations, 1);
}

TEST(Router, LockedRoutesAreChargedButNotRipped) {
  const Device device = make_tiny_device();
  PointToPoint design;
  design.add_pair(TileCoord{2, 4}, TileCoord{8, 4});
  design.add_pair(TileCoord{2, 4}, TileCoord{8, 4});
  // Pre-route net 0 and lock it along the straight line.
  RouteInfo& locked = design.phys.routes[0];
  locked.routed = true;
  for (int x = 2; x < 8; ++x) {
    locked.edges.emplace_back(TileCoord{x, 4}, TileCoord{x + 1, 4});
  }
  locked.sink_delays_ns = {0.5};
  design.netlist.net(0).routing_locked = true;
  const auto locked_copy = locked.edges;

  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.nets_routed, 1u);  // only the open net
  EXPECT_EQ(design.phys.routes[0].edges, locked_copy);
  EXPECT_TRUE(design.phys.routes[1].routed);
}

TEST(Router, ExtendsPartialNetFromSeedTree) {
  const Device device = make_tiny_device();
  Netlist nl("partial");
  Cell drv;
  drv.type = CellType::kFf;
  const CellId d = nl.add_cell(std::move(drv));
  const NetId n = nl.add_net(1);
  nl.connect_output(d, 0, n);
  Cell s1;
  s1.type = CellType::kFf;
  const CellId sink1 = nl.add_cell(std::move(s1));
  nl.connect_input(sink1, 0, n);
  Cell s2;
  s2.type = CellType::kFf;
  const CellId sink2 = nl.add_cell(std::move(s2));
  nl.connect_input(sink2, 0, n);

  PhysState phys;
  phys.resize_for(nl);
  phys.cell_loc[d] = TileCoord{2, 2};
  phys.cell_loc[sink1] = TileCoord{6, 2};
  phys.cell_loc[sink2] = TileCoord{6, 10};
  // The component's internal route covers sink1 only (delays for 1 sink);
  // sink2 was stitched on afterwards.
  RouteInfo& route = phys.routes[n];
  route.routed = true;
  for (int x = 2; x < 6; ++x) route.edges.emplace_back(TileCoord{x, 2}, TileCoord{x + 1, 2});
  route.sink_delays_ns = {0.33};

  const RouteResult result = route_design(device, nl, phys);
  ASSERT_TRUE(result.success);
  const RouteInfo& updated = phys.routes[n];
  ASSERT_EQ(updated.sink_delays_ns.size(), 2u);
  EXPECT_DOUBLE_EQ(updated.sink_delays_ns[0], 0.33);  // locked delay kept
  EXPECT_GT(updated.sink_delays_ns[1], 0.0);
  // Seed edges survive; continuation grows from the existing tree, not a
  // fresh route from the driver (total length < independent route).
  EXPECT_GE(updated.edges.size(), 4u);
  expect_connected(updated, TileCoord{2, 2}, TileCoord{6, 10});
}

TEST(Router, BoundedRegionKeepsRoutesInside) {
  const Device device = make_tiny_device();
  PointToPoint design;
  design.add_pair(TileCoord{3, 3}, TileCoord{9, 9});
  RouteOptions opt;
  opt.bounded = true;
  opt.region = Pblock{2, 2, 10, 10};
  const RouteResult result = route_design(device, design.netlist, design.phys, opt);
  ASSERT_TRUE(result.success);
  for (const auto& [a, b] : design.phys.routes[0].edges) {
    EXPECT_TRUE(opt.region.contains(a.x, a.y));
    EXPECT_TRUE(opt.region.contains(b.x, b.y));
  }
}

TEST(Router, DiscontinuityCrossingCostsMoreDelay) {
  const Device device = make_tiny_device();  // IO column at x=12
  PointToPoint same_side, crossing;
  same_side.add_pair(TileCoord{2, 5}, TileCoord{10, 5});    // 8 tiles, no IO
  crossing.add_pair(TileCoord{8, 5}, TileCoord{16, 5});     // 8 tiles, crosses IO
  ASSERT_TRUE(route_design(device, same_side.netlist, same_side.phys).success);
  ASSERT_TRUE(route_design(device, crossing.netlist, crossing.phys).success);
  EXPECT_GT(crossing.phys.routes[0].sink_delays_ns[0],
            same_side.phys.routes[0].sink_delays_ns[0] + 0.2);
}

TEST(Router, CommittedDelaysReflectSettledUsage) {
  const Device device = make_tiny_device();
  PointToPoint design;
  // Two nets forced onto the same four horizontal edges: every edge settles
  // at usage 2, and the committed delays must price that for BOTH nets.
  // During negotiation each net computed its delays while its own usage was
  // ripped up and later nets were mid-iteration (net 0 saw use 0, net 1 saw
  // use 1), so without the commit-time re-walk both values are stale.
  design.add_pair(TileCoord{2, 5}, TileCoord{6, 5});
  design.add_pair(TileCoord{2, 5}, TileCoord{6, 5});
  RouteOptions opt;
  opt.channel_capacity = 4;           // no overuse: both keep the straight path
  opt.congestion_delay_factor = 1.0;  // make the load term visible
  const RouteResult result = route_design(device, design.netlist, design.phys, opt);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.max_overuse, 0);
  const DelayModel dm;
  // Unique shortest path is the straight row: 4 edges at use 2 of cap 4.
  const double load = 2.0 / 4.0;
  const double per_edge = dm.wire_per_tile * (1.0 + 1.0 * load * load);
  const double expected = dm.wire_base + 4 * per_edge;
  ASSERT_EQ(design.phys.routes[0].edges.size(), 4u);
  ASSERT_EQ(design.phys.routes[1].edges.size(), 4u);
  // 1e-6 absorbs float rounding in edge delays; the stale pre-fix values
  // (use 0 and use 1 instead of 2) are off by ~0.03 ns, 4 orders above it.
  EXPECT_NEAR(design.phys.routes[0].sink_delays_ns[0], expected, 1e-6);
  EXPECT_NEAR(design.phys.routes[1].sink_delays_ns[0], expected, 1e-6);
}

TEST(Router, WideFanoutKeepsAdmissibleHeuristic) {
  // 12 sinks (> 8: the router switches from the per-node min-scan to the
  // multi-source BFS nearest-target grid). On an uncongested fabric the
  // heuristic must stay admissible, i.e. the tree still shares trunk
  // wiring and beats independent point-to-point routes.
  const Device device = make_tiny_device();
  Netlist nl("wide");
  PhysState phys;
  Cell drv;
  drv.type = CellType::kFf;
  const CellId d = nl.add_cell(std::move(drv));
  const NetId n = nl.add_net(1);
  nl.connect_output(d, 0, n);
  std::vector<TileCoord> sinks;
  for (int i = 0; i < 12; ++i) {
    sinks.push_back(TileCoord{4 + (i % 4) * 5, 4 + (i / 4) * 10});
  }
  std::vector<CellId> sink_cells;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    Cell c;
    c.type = CellType::kFf;
    const CellId s = nl.add_cell(std::move(c));
    nl.connect_input(s, 0, n);
    sink_cells.push_back(s);
  }
  phys.resize_for(nl);
  phys.cell_loc[d] = TileCoord{2, 16};
  for (std::size_t i = 0; i < sinks.size(); ++i) phys.cell_loc[sink_cells[i]] = sinks[i];

  const RouteResult result = route_design(device, nl, phys);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(phys.routes[n].sink_delays_ns.size(), 12u);
  std::size_t independent = 0;
  for (const TileCoord& s : sinks) {
    expect_connected(phys.routes[n], phys.cell_loc[d], s);
    independent += static_cast<std::size_t>(std::abs(s.x - 2) + std::abs(s.y - 16));
  }
  EXPECT_LT(phys.routes[n].edges.size(), independent);
}

TEST(Router, DuplicateSinkTilesRouteOnce) {
  // Ten sinks on the same tile (stitched broadcast nets do this): the tile
  // is routed to once and every sink gets the same positive delay.
  const Device device = make_tiny_device();
  Netlist nl("dup");
  PhysState phys;
  Cell drv;
  drv.type = CellType::kFf;
  const CellId d = nl.add_cell(std::move(drv));
  const NetId n = nl.add_net(1);
  nl.connect_output(d, 0, n);
  std::vector<CellId> sink_cells;
  for (int i = 0; i < 10; ++i) {
    Cell c;
    c.type = CellType::kFf;
    const CellId s = nl.add_cell(std::move(c));
    nl.connect_input(s, 0, n);
    sink_cells.push_back(s);
  }
  phys.resize_for(nl);
  phys.cell_loc[d] = TileCoord{3, 3};
  for (CellId s : sink_cells) phys.cell_loc[s] = TileCoord{9, 3};

  const RouteResult result = route_design(device, nl, phys);
  ASSERT_TRUE(result.success);
  // One Manhattan-optimal path, not ten.
  EXPECT_EQ(phys.routes[n].edges.size(), 6u);
  ASSERT_EQ(phys.routes[n].sink_delays_ns.size(), 10u);
  for (double delay : phys.routes[n].sink_delays_ns) {
    EXPECT_DOUBLE_EQ(delay, phys.routes[n].sink_delays_ns[0]);
    EXPECT_GT(delay, 0.0);
  }
}

TEST(Router, IterationStatsTrackNegotiation) {
  const Device device = make_tiny_device();
  PointToPoint design;
  for (int i = 0; i < 24; ++i) {
    design.add_pair(TileCoord{2, 10 + i % 4}, TileCoord{20, 10 + i % 4});
  }
  RouteOptions opt;
  opt.channel_capacity = 3;
  opt.max_iterations = 80;
  opt.history_factor = 0.8;
  const RouteResult result = route_design(device, design.netlist, design.phys, opt);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.iteration_stats.size(), static_cast<std::size_t>(result.iterations));
  // Iteration 1 routes everything; incremental rip-up shrinks the worklist
  // as nets escape the corridor (early rounds may still dirty all of them).
  EXPECT_EQ(result.iteration_stats[0].nets_rerouted, 24);
  int min_later = 24;
  for (std::size_t i = 1; i < result.iteration_stats.size(); ++i) {
    min_later = std::min(min_later, result.iteration_stats[i].nets_rerouted);
  }
  EXPECT_LT(min_later, 24);
  // Converged: the last round found no overuse.
  EXPECT_EQ(result.iteration_stats.back().overused_edges, 0);
  EXPECT_FALSE(result.iteration_summary().empty());
}

TEST(Router, SkipsNetsWithUnplacedEndpoints) {
  const Device device = make_tiny_device();
  PointToPoint design;
  design.add_pair(TileCoord{2, 2}, TileCoord{4, 4});
  design.phys.cell_loc[0] = kUnplaced;  // driver unplaced
  const RouteResult result = route_design(device, design.netlist, design.phys);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.nets_routed, 0u);
  EXPECT_FALSE(design.phys.routes[0].routed);
}

}  // namespace
}  // namespace fpgasim
