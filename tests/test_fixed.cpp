#include <gtest/gtest.h>

#include "sim/fixed.h"
#include "util/rng.h"

namespace fpgasim {
namespace {

TEST(Fixed16, DoubleRoundTrip) {
  EXPECT_DOUBLE_EQ(Fixed16::from_double(1.5).to_double(), 1.5);
  EXPECT_DOUBLE_EQ(Fixed16::from_double(-0.25).to_double(), -0.25);
  EXPECT_EQ(Fixed16::from_double(1.0).raw, 256);
}

TEST(Fixed16, AdditionSaturates) {
  const Fixed16 big = Fixed16::from_raw(INT16_MAX);
  EXPECT_EQ((big + Fixed16::from_raw(100)).raw, INT16_MAX);
  const Fixed16 small = Fixed16::from_raw(INT16_MIN);
  EXPECT_EQ((small - Fixed16::from_raw(100)).raw, INT16_MIN);
}

TEST(Fixed16, MultiplyMatchesQ88Semantics) {
  const Fixed16 a = Fixed16::from_double(2.0);
  const Fixed16 b = Fixed16::from_double(0.5);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 1.0);
  // Truncation, not rounding: 0.00390625 * 0.5 truncates to 0.
  EXPECT_EQ((Fixed16::from_raw(1) * Fixed16::from_raw(128)).raw, 0);
}

TEST(Fixed16, MultiplySaturates) {
  const Fixed16 big = Fixed16::from_double(100.0);
  EXPECT_EQ((big * big).raw, INT16_MAX);
  const Fixed16 neg = Fixed16::from_double(-100.0);
  EXPECT_EQ((big * neg).raw, INT16_MIN);
}

TEST(Fixed16, MaxAndRelu) {
  const Fixed16 a = Fixed16::from_double(-1.0);
  const Fixed16 b = Fixed16::from_double(2.0);
  EXPECT_EQ(fixed_max(a, b), b);
  EXPECT_EQ(fixed_max(b, a), b);
  EXPECT_EQ(fixed_relu(a).raw, 0);
  EXPECT_EQ(fixed_relu(b), b);
}

TEST(Fixed16, ComparisonOperators) {
  EXPECT_LT(Fixed16::from_double(-1.0), Fixed16::from_double(1.0));
  EXPECT_EQ(Fixed16::from_double(0.5), Fixed16::from_raw(128));
}

class SextWidth : public ::testing::TestWithParam<int> {};

TEST_P(SextWidth, SignExtensionRoundTrips) {
  const int width = GetParam();
  Rng rng(static_cast<std::uint64_t>(width));
  for (int i = 0; i < 200; ++i) {
    const std::int64_t lo = -(1LL << (width - 1));
    const std::int64_t hi = (1LL << (width - 1)) - 1;
    const std::int64_t value = rng.next_int(lo, hi);
    EXPECT_EQ(sext(mask_width(static_cast<std::uint64_t>(value), width), width), value)
        << "width=" << width << " value=" << value;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SextWidth, ::testing::Values(2, 4, 8, 16, 24, 32, 48));

TEST(MaskWidth, ClipsToWidth) {
  EXPECT_EQ(mask_width(0xFFFF, 8), 0xFFu);
  EXPECT_EQ(mask_width(0x1234, 16), 0x1234u);
  EXPECT_EQ(mask_width(~0ULL, 64), ~0ULL);
}

TEST(DivRne, RoundsHalfToEven) {
  // Exact halves land on the even quotient, both signs.
  EXPECT_EQ(div_rne(5, 2), 2);
  EXPECT_EQ(div_rne(7, 2), 4);
  EXPECT_EQ(div_rne(-5, 2), -2);
  EXPECT_EQ(div_rne(-7, 2), -4);
  EXPECT_EQ(div_rne(2, 4), 0);
  EXPECT_EQ(div_rne(6, 4), 2);
  EXPECT_EQ(div_rne(-2, 4), 0);
  EXPECT_EQ(div_rne(-6, 4), -2);
}

TEST(DivRne, NonTiesRoundToNearest) {
  EXPECT_EQ(div_rne(0, 7), 0);
  EXPECT_EQ(div_rne(10, 3), 3);
  EXPECT_EQ(div_rne(11, 3), 4);
  EXPECT_EQ(div_rne(-10, 3), -3);
  EXPECT_EQ(div_rne(-11, 3), -4);
  EXPECT_EQ(div_rne(99, 100), 1);
  EXPECT_EQ(div_rne(-99, 100), -1);
  EXPECT_EQ(div_rne(49, 100), 0);
}

TEST(DivRne, Width64Edges) {
  // The implementation must never form 2*|r| or negate den: these inputs
  // overflow any naive formulation.
  constexpr std::int64_t kMax = INT64_MAX;
  constexpr std::int64_t kMin = INT64_MIN;
  EXPECT_EQ(div_rne(kMax, 1), kMax);
  EXPECT_EQ(div_rne(kMin, 1), kMin);
  EXPECT_EQ(div_rne(kMax, kMax), 1);
  EXPECT_EQ(div_rne(kMin + 1, kMax), -1);
  // kMax = 2^63 - 1: kMax/2 truncates to 2^62 - 1 (odd remainder 1 < half).
  EXPECT_EQ(div_rne(kMax, 2), (kMax >> 1) + 1);  // .5 up to the even 2^62
  EXPECT_EQ(div_rne(kMin, 2), kMin / 2);         // exact
  EXPECT_EQ(div_rne(kMin + 1, 2), kMin / 2);     // -.5 toward the even quotient
  EXPECT_EQ(div_rne(kMax - 1, kMax), 1);
  EXPECT_EQ(div_rne(1, kMax), 0);
  EXPECT_EQ(div_rne(-1, kMax), 0);
}

TEST(DivRne, MatchesShiftAdjustForPow2Denominators) {
  // The avgpool engine divides by shifting (floor) then adjusting on the
  // remainder; div_rne is its specification. Cross-check on the window
  // sizes the engine accepts (2..256) over a signed value sweep.
  Rng rng(321);
  for (int shift = 1; shift <= 8; ++shift) {
    const std::int64_t den = std::int64_t{1} << shift;
    for (int trial = 0; trial < 400; ++trial) {
      const std::int64_t num = rng.next_int(-5000, 5000);
      const std::int64_t q0 = num >> shift;  // floor
      const std::int64_t rem = num & (den - 1);
      const std::int64_t half = den >> 1;
      const bool bump = rem > half || (rem == half && (q0 & 1) != 0);
      EXPECT_EQ(div_rne(num, den), q0 + (bump ? 1 : 0)) << num << "/" << den;
    }
  }
}

TEST(Fixed16, MulAddAssociativityWithoutSaturation) {
  // The hardware sums products in a different order than the golden model;
  // small magnitudes never clip, so the results must match exactly.
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    Fixed16 terms[6];
    for (Fixed16& t : terms) t = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-60, 60)));
    Fixed16 seq = terms[0];
    for (int i = 1; i < 6; ++i) seq = seq + terms[i];
    Fixed16 tree = ((terms[0] + terms[1]) + (terms[2] + terms[3])) + (terms[4] + terms[5]);
    EXPECT_EQ(seq, tree);
  }
}

}  // namespace
}  // namespace fpgasim
