#include <gtest/gtest.h>

#include "sim/golden.h"
#include "sim/simulator.h"
#include "stream_harness.h"
#include "synth/streaming_conv.h"

namespace fpgasim {
namespace {

using testhelpers::random_params;
using testhelpers::random_tensor;

/// Drives the streaming engine with a whole frame (all channels in
/// parallel, pixel-major) and collects the per-channel output planes.
std::vector<Tensor> run_streaming(const Netlist& nl, const StreamingConvParams& p,
                                  const Tensor& input, int in_h) {
  Simulator sim(nl);
  const int Ho = in_h - p.kernel + 1;
  const int Wo = p.in_w - p.kernel + 1;
  std::vector<Tensor> out(static_cast<std::size_t>(p.out_c));
  for (auto& plane : out) plane = Tensor::zeros(1, Ho, Wo);
  int collected = 0;

  auto collect = [&] {
    if (sim.get_output("out_valid") != 1) return;
    const int oy = collected / Wo;
    const int ox = collected % Wo;
    if (oy < Ho) {
      for (int j = 0; j < p.out_c; ++j) {
        out[static_cast<std::size_t>(j)].at(0, oy, ox) =
            Fixed16{static_cast<std::int16_t>(static_cast<std::uint16_t>(
                sim.get_output("out_data_" + std::to_string(j))))};
      }
    }
    ++collected;
  };

  sim.set_input("in_valid", 1);
  for (int y = 0; y < in_h; ++y) {
    for (int x = 0; x < p.in_w; ++x) {
      for (int c = 0; c < p.in_c; ++c) {
        sim.set_input("in_data_" + std::to_string(c),
                      static_cast<std::uint16_t>(input.at(c, y, x).raw));
      }
      sim.step();
      collect();
    }
  }
  // Flush the MAC pipeline for the tail outputs.
  sim.set_input("in_valid", 0);
  for (int flush = 0; flush < p.dsp_stages + 3; ++flush) {
    sim.step();
    collect();
  }
  EXPECT_EQ(collected, Ho * Wo);
  return out;
}

struct SConvCase {
  int in_c, out_c, kernel, h, w, stages;
  bool relu;
};

class StreamingConv : public ::testing::TestWithParam<SConvCase> {};

TEST_P(StreamingConv, MatchesGoldenOnInteriorWindows) {
  const SConvCase& tc = GetParam();
  StreamingConvParams p;
  p.in_c = tc.in_c;
  p.out_c = tc.out_c;
  p.kernel = tc.kernel;
  p.in_w = tc.w;
  p.dsp_stages = tc.stages;
  p.fuse_relu = tc.relu;
  const auto weights =
      random_params(static_cast<std::size_t>(tc.out_c) * tc.in_c * tc.kernel * tc.kernel, 71);
  const auto bias = random_params(static_cast<std::size_t>(tc.out_c), 72);
  const Tensor input = random_tensor(tc.in_c, tc.h, tc.w, 73);
  Tensor expected = golden_conv2d(input, weights, bias, tc.out_c, tc.kernel, 1);
  if (tc.relu) expected = golden_relu(expected);

  const Netlist nl = make_streaming_conv_component(p, weights, bias);
  ASSERT_TRUE(nl.validate().empty());
  const auto out = run_streaming(nl, p, input, tc.h);

  // Compare interior output pixels. Row-wrap windows (the last K-1 columns
  // of each collected row) are architectural wrap-around artifacts of the
  // line buffer and are skipped by construction above via exact indexing:
  // every (oy, ox) with ox < Wo matches the golden model.
  for (int j = 0; j < tc.out_c; ++j) {
    for (int oy = 0; oy < expected.height; ++oy) {
      for (int ox = 0; ox < expected.width; ++ox) {
        EXPECT_EQ(out[static_cast<std::size_t>(j)].at(0, oy, ox).raw,
                  expected.at(j, oy, ox).raw)
            << "oc=" << j << " (" << oy << "," << ox << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StreamingConv,
                         ::testing::Values(SConvCase{1, 1, 3, 6, 6, 1, false},
                                           SConvCase{1, 2, 3, 6, 6, 1, false},
                                           SConvCase{2, 2, 3, 6, 6, 1, false},
                                           SConvCase{3, 2, 3, 5, 7, 1, true},
                                           SConvCase{1, 1, 2, 5, 5, 1, false},
                                           SConvCase{1, 1, 5, 7, 8, 1, false},
                                           SConvCase{2, 3, 3, 6, 6, 2, false},
                                           SConvCase{1, 2, 3, 6, 6, 0, false}));

TEST(StreamingConv, DspCountIsFullyParallel) {
  StreamingConvParams p;
  p.in_c = 2;
  p.out_c = 4;
  p.kernel = 3;
  p.in_w = 8;
  const auto weights = random_params(static_cast<std::size_t>(4) * 2 * 9, 81);
  const auto bias = random_params(4, 82);
  const Netlist nl = make_streaming_conv_component(p, weights, bias);
  EXPECT_EQ(nl.stats().resources.dsp, p.dsp_count());  // 72: one DSP per tap
  EXPECT_EQ(nl.stats().resources.bram, 0);             // pure SRL line buffers
  EXPECT_GT(nl.stats().resources.lut, 0);
}

TEST(StreamingConv, ThroughputIsOnePixelPerCycle) {
  StreamingConvParams p;
  p.in_c = 1;
  p.out_c = 1;
  p.kernel = 3;
  p.in_w = 8;
  const auto weights = random_params(9, 91);
  const auto bias = random_params(1, 92);
  const Netlist nl = make_streaming_conv_component(p, weights, bias);
  Simulator sim(nl);
  sim.set_input("in_valid", 1);
  int valid_count = 0;
  const int total_pixels = 8 * 8;
  for (int i = 0; i < total_pixels; ++i) {
    sim.set_input("in_data_0", static_cast<std::uint64_t>(i % 50));
    sim.step();
    valid_count += (sim.get_output("out_valid") == 1);
  }
  // After warm-up every streamed pixel with x>=K-1, y>=K-1 yields an
  // output in the same cycle cadence (modulo the 2-cycle pipeline).
  EXPECT_GE(valid_count, 6 * 6 - 2);
}

TEST(StreamingConv, RejectsKernelWiderThanLine) {
  StreamingConvParams p;
  p.kernel = 5;
  p.in_w = 4;
  EXPECT_THROW(make_streaming_conv_component(p, std::vector<Fixed16>(25), {Fixed16{0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpgasim
