// Determinism contract of the parallel component-database build
// (prepare_component_db): every thread-pool width must produce the same
// checkpoints, byte for byte once the recorded wall-times — measurements,
// not results — are normalized out. Seeds derive from the dedup index
// alone, so scheduling order cannot leak into the output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "flow/build.h"

namespace fpgasim {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// All .fdcp files of a directory: file name -> contents.
std::map<std::string, std::string> dir_bytes(const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".fdcp") continue;
    files[entry.path().filename().string()] = slurp(entry.path());
  }
  return files;
}

struct ParallelBuildFixture {
  Device device = make_xcku5p_sim();
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;

  ParallelBuildFixture() {
    // Four distinct components (both convs differ in input channels; the
    // pools differ in fused relu), so width > 1 actually overlaps work.
    // Spatial sizes: 14 -> 12 (c1) -> 6 (p1) -> 4 (c2) -> 2 (p2).
    model = parse_arch_def(R"(network par
input 2 14 14
conv c1 out=4 k=3
pool p1 k=2 relu
conv c2 out=4 k=3
pool p2 k=2
)");
    impl = choose_implementation(model, 12);
    groups = default_grouping(model);
  }

  /// Builds the database on `width` workers and persists it with
  /// implement_seconds zeroed (wall time is the one legitimately
  /// nondeterministic field of a checkpoint).
  std::map<std::string, std::string> build(std::size_t width, DbBuildReport* report) {
    ThreadPool pool(width);
    CheckpointDb db;
    prepare_component_db(device, model, impl, groups, db, {}, 1000, &pool, report);
    CheckpointDb normalized;
    for (const std::string& key : db.keys()) {
      Checkpoint copy = *db.get(key);
      copy.meta.implement_seconds = 0.0;
      normalized.put(key, std::move(copy));
    }
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        ("fpgasim_par_db_w" + std::to_string(width));
    std::filesystem::remove_all(dir);
    normalized.save_dir(dir.string());
    auto bytes = dir_bytes(dir);
    std::filesystem::remove_all(dir);
    return bytes;
  }
};

TEST(ParallelBuild, DatabaseIsByteIdenticalAcrossThreadCounts) {
  ParallelBuildFixture fixture;
  DbBuildReport serial_report;
  const auto serial = fixture.build(1, &serial_report);
  EXPECT_EQ(serial_report.implemented, 4u);
  EXPECT_EQ(serial_report.threads, 1u);
  EXPECT_GT(serial_report.wall_seconds, 0.0);
  EXPECT_GT(serial_report.cpu_seconds, 0.0);
  ASSERT_EQ(serial.size(), 4u);

  for (const std::size_t width : {std::size_t{2}, std::size_t{8}}) {
    DbBuildReport report;
    const auto parallel = fixture.build(width, &report);
    EXPECT_EQ(report.threads, width);
    EXPECT_EQ(report.implemented, 4u);
    ASSERT_EQ(parallel.size(), serial.size()) << "width " << width;
    for (const auto& [name, bytes] : serial) {
      const auto it = parallel.find(name);
      ASSERT_NE(it, parallel.end()) << "missing " << name << " at width " << width;
      EXPECT_EQ(it->second, bytes)
          << "checkpoint " << name << " differs at width " << width;
    }
  }
}

TEST(ParallelBuild, BranchingModelDatabaseIsByteIdenticalAcrossThreadCounts) {
  // The resblock database adds join components and a stream fork to the
  // work list; fork seeds derive from their position after the group keys,
  // so pool width must still not leak into any checkpoint.
  ParallelBuildFixture fixture;
  fixture.model = make_resblock_net();
  fixture.impl = choose_implementation(fixture.model, 16);
  fixture.groups = default_grouping(fixture.model);

  DbBuildReport serial_report;
  const auto serial = fixture.build(1, &serial_report);
  // 6 groups + the 2-way fork.
  EXPECT_EQ(serial_report.implemented, 7u);
  ASSERT_EQ(serial.size(), 7u);

  for (const std::size_t width : {std::size_t{2}, std::size_t{8}}) {
    DbBuildReport report;
    const auto parallel = fixture.build(width, &report);
    EXPECT_EQ(report.implemented, 7u);
    ASSERT_EQ(parallel.size(), serial.size()) << "width " << width;
    for (const auto& [name, bytes] : serial) {
      const auto it = parallel.find(name);
      ASSERT_NE(it, parallel.end()) << "missing " << name << " at width " << width;
      EXPECT_EQ(it->second, bytes)
          << "checkpoint " << name << " differs at width " << width;
    }
  }
}

TEST(ParallelBuild, CacheHitsSkipReimplementation) {
  ParallelBuildFixture fixture;
  ThreadPool pool(2);
  CheckpointDb db;
  EXPECT_EQ(prepare_component_db(fixture.device, fixture.model, fixture.impl,
                                 fixture.groups, db, {}, 1000, &pool),
            4u);
  // Second run: everything is already in the database.
  DbBuildReport report;
  EXPECT_EQ(prepare_component_db(fixture.device, fixture.model, fixture.impl,
                                 fixture.groups, db, {}, 1000, &pool, &report),
            0u);
  EXPECT_EQ(report.implemented, 0u);
  EXPECT_EQ(db.size(), 4u);
}

}  // namespace
}  // namespace fpgasim
