// Ablation A (Sec. IV-A2, "strategic floorplanning"): sweep the pblock
// resource slack of one convolution component. Tight pblocks force area
// optimization but risk congestion; loose pblocks waste area and reduce
// relocatability (fewer column-compatible anchors).
#include "bench_common.h"
#include "flow/ooc.h"
#include "synth/layers.h"

using namespace fpgasim;

int main() {
  const Device device = make_xcku5p_sim();
  ConvParams p;
  p.name = "conv_sweep";
  p.in_c = 4;
  p.out_c = 8;
  p.kernel = 3;
  p.in_h = 14;
  p.in_w = 14;
  p.ic_par = 4;
  p.oc_par = 4;
  p.materialize_roms = false;

  Table table("Ablation A: pblock slack sweep (conv 4->8, k3, 4x4 PEs)");
  table.set_header({"slack", "pblock", "area (tiles)", "Fmax (MHz)", "anchors",
                    "impl time (s)"});
  for (double slack : {1.05, 1.25, 1.5, 2.0, 3.0, 5.0}) {
    OocOptions opt;
    opt.pblock_slack = slack;
    opt.strategies = 2;
    opt.seed = 17;
    const OocResult result = implement_ooc(device, make_conv_component(p, {}, {}), opt);
    const auto anchors = relocation_offsets(device, result.checkpoint.pblock);
    table.add_row({Table::fmt(slack, 2), result.checkpoint.pblock.to_string(),
                   std::to_string(result.checkpoint.pblock.area()),
                   Table::fmt(result.timing.fmax_mhz, 1), std::to_string(anchors.size()),
                   Table::fmt(result.seconds, 2)});
  }
  table.print();
  std::puts("expected shape: the smaller the pblock, the more relocation anchors exist");
  std::puts("(paper: 'the smaller the area of a pblock is, the more RapidWright will be");
  std::puts("capable of relocating the design components across the chip'); very tight");
  std::puts("pblocks eventually cost Fmax through routing congestion.");
  return 0;
}
