// Relocation-placer benchmark: the paper's Alg. 1 at paper scale (a
// VGG-class chain), on a branching residual topology, and on a dense
// synthetic ~40-component scenario — the regime toolflow surveys scale to
// and where the seed placer's full-recompute evaluation was the wall.
// Each scenario runs the incremental kernel serially, the incremental
// kernel with 4-thread multi-start, and the full-recompute A/B baseline;
// placements must be byte-identical between the incremental and full
// paths (the bench exits non-zero otherwise, making the CI smoke run a
// functional check). Results merge into BENCH_place.json.
//
// Usage: bench_place [--smoke]   (--smoke: 1 repetition instead of 5)
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fabric/device.h"
#include "place/macro_placer.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fpgasim {
namespace {

struct Scenario {
  std::string name;
  std::vector<MacroItem> items;
  std::vector<MacroNet> nets;
};

void edge(Scenario& s, int a, int b) { s.nets.push_back(MacroNet{{a, b}, 1.0}); }

MacroItem item(const std::string& name, int w, int h) {
  return MacroItem{name, Pblock{0, 0, w - 1, h - 1}};
}

/// VGG-16 granularity: 14 pre-implemented components in a linear chain.
Scenario vgg_chain() {
  Scenario s;
  s.name = "vgg_chain";
  const int widths[] = {8, 10, 12, 14};
  const int heights[] = {16, 20, 24, 32};
  for (int i = 0; i < 14; ++i) {
    s.items.push_back(item("vgg" + std::to_string(i), widths[i % 4], heights[(i * 3) % 4]));
    if (i > 0) edge(s, i - 1, i);
  }
  return s;
}

/// Two stacked residual blocks: stem -> (conv-conv | 1x1 skip) -> add,
/// then again, then a tail — the branching-DFG shape of PR 4.
Scenario resblock() {
  Scenario s;
  s.name = "resblock";
  const char* names[] = {"stem", "b1conv1", "b1conv2", "b1skip", "b1add",
                         "mid",  "b2conv1", "b2conv2", "b2skip", "b2add", "tail"};
  const int widths[] = {10, 12, 12, 8, 8, 10, 12, 12, 8, 8, 10};
  const int heights[] = {20, 24, 24, 12, 16, 20, 24, 24, 12, 16, 20};
  for (int i = 0; i < 11; ++i) s.items.push_back(item(names[i], widths[i], heights[i]));
  edge(s, 0, 1);
  edge(s, 0, 3);
  edge(s, 1, 2);
  edge(s, 2, 4);
  edge(s, 3, 4);
  edge(s, 4, 5);
  edge(s, 5, 6);
  edge(s, 5, 8);
  edge(s, 6, 7);
  edge(s, 7, 9);
  edge(s, 8, 9);
  edge(s, 9, 10);
  return s;
}

/// Dense synthetic scenario: 40 mixed-size components with the heavy
/// connectivity of skip/concat-style CNN graphs — a chain, skip edges,
/// 3-pin fan-out nets, and extra random 2-pin nets (fixed seed). Roughly
/// 4.4 nets per component, well past the paper's LeNet/VGG chains.
Scenario dense40() {
  Scenario s;
  s.name = "dense40";
  const int count = 40;
  const int widths[] = {6, 8, 10, 12, 14};
  const int heights[] = {12, 16, 20, 24};
  Rng rng(7);
  for (int i = 0; i < count; ++i) {
    const int w = widths[rng.next_below(5)];
    const int h = heights[rng.next_below(4)];
    s.items.push_back(item("d" + std::to_string(i), w, h));
    if (i > 0) edge(s, i - 1, i);
    if (i >= 3 && i % 3 == 0) edge(s, i - 3, i);
    if (i >= 5 && i % 5 == 0) s.nets.push_back(MacroNet{{i - 5, i - 2, i}, 1.0});
  }
  for (int e = 0; e < count * 3; ++e) {
    const int a = static_cast<int>(rng.next_below(count));
    const int b = static_cast<int>(rng.next_below(count));
    if (a != b) edge(s, a, b);
  }
  return s;
}

struct Sample {
  MacroPlaceResult result;
  double wall_s = 0.0;
  double cpu_s = 0.0;
};

Sample run_variant(const Device& device, const Scenario& s, std::size_t width,
                   bool incremental, int reps) {
  ThreadPool pool(width);
  MacroPlaceOptions opt;
  opt.pool = &pool;
  opt.incremental = incremental;
  Sample best;
  for (int r = 0; r < reps; ++r) {
    MacroPlaceResult result = place_macros(device, s.items, s.nets, opt);
    if (r == 0 || result.stats.wall_seconds < best.wall_s) {
      best.wall_s = result.stats.wall_seconds;
      best.cpu_s = result.stats.cpu_seconds;
      best.result = std::move(result);
    }
  }
  return best;
}

void emit_variant(JsonWriter& json, const char* key, const Sample& sample) {
  const MacroPlaceResult& r = sample.result;
  json.key(key).begin_object();
  json.key("wall_s").value(sample.wall_s);
  json.key("cpu_s").value(sample.cpu_s);
  json.key("success").value(r.success);
  json.key("cost_evals").value(r.stats.cost_evals);
  json.key("nets_touched").value(r.stats.nets_touched);
  json.key("overlap_tests").value(r.stats.overlap_tests);
  json.key("winner_start").value(r.stats.winner_start);
  json.key("backtracks_winner").value(r.backtracks);
  json.key("timing_cost").value(r.timing_cost);
  json.key("congestion_cost").value(r.congestion_cost);
  json.end_object();
}

/// Placements must not depend on the evaluation path: offsets and costs
/// byte-identical between the incremental kernel and the full recompute.
bool identical(const MacroPlaceResult& a, const MacroPlaceResult& b) {
  return a.success == b.success && a.offsets == b.offsets &&
         a.timing_cost == b.timing_cost && a.congestion_cost == b.congestion_cost;
}

}  // namespace
}  // namespace fpgasim

int main(int argc, char** argv) {
  using namespace fpgasim;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int reps = smoke ? 1 : 5;
  const Device device = make_xcku5p_sim();

  std::printf("bench_place: relocation placer (Alg. 1), %d repetition(s), %u hardware threads\n",
              reps, std::thread::hardware_concurrency());
  std::printf("%-10s %5s %5s | %12s %12s %12s | %8s %10s\n", "scenario", "comps", "nets",
              "inc_serial_s", "inc_4thr_s", "full_serial", "speedup", "cost_evals");

  JsonWriter json;
  json.begin_object();
  json.key("hardware_threads").value(static_cast<int>(std::thread::hardware_concurrency()));
  json.key("smoke").value(smoke);
  json.key("scenarios").begin_object();

  bool ok = true;
  for (const Scenario& s : {vgg_chain(), resblock(), dense40()}) {
    const Sample inc_serial = run_variant(device, s, 1, true, reps);
    const Sample inc_thr4 = run_variant(device, s, 4, true, reps);
    const Sample full_serial = run_variant(device, s, 1, false, reps);
    if (!inc_serial.result.success) {
      std::fprintf(stderr, "FAIL %s: placement failed: %s\n", s.name.c_str(),
                   inc_serial.result.error.c_str());
      ok = false;
    }
    if (!identical(inc_serial.result, full_serial.result) ||
        !identical(inc_serial.result, inc_thr4.result)) {
      std::fprintf(stderr,
                   "FAIL %s: incremental/full or serial/4-thread placements diverge\n",
                   s.name.c_str());
      ok = false;
    }
    const double speedup =
        inc_serial.wall_s > 0.0 ? full_serial.wall_s / inc_serial.wall_s : 0.0;
    std::printf("%-10s %5zu %5zu | %12.4f %12.4f %12.4f | %7.2fx %10ld\n", s.name.c_str(),
                s.items.size(), s.nets.size(), inc_serial.wall_s, inc_thr4.wall_s,
                full_serial.wall_s, speedup, inc_serial.result.stats.cost_evals);

    json.key(s.name).begin_object();
    json.key("components").value(s.items.size());
    json.key("nets").value(s.nets.size());
    emit_variant(json, "incremental_serial", inc_serial);
    emit_variant(json, "incremental_threads4", inc_thr4);
    emit_variant(json, "full_serial", full_serial);
    json.key("speedup_incremental_vs_full").value(speedup);
    json.end_object();
  }
  json.end_object();
  json.end_object();

  if (update_json_file("BENCH_place.json", "bench_place", json.str())) {
    std::puts("wrote BENCH_place.json (bench_place section)");
  }
  return ok ? 0 : 1;
}
