// Table I: computational resources of LeNet-5 and VGG-16 (weights and
// MACs, conv vs. fully-connected). Pure model accounting; printed next to
// the paper's reported values.
#include "bench_common.h"

using namespace fpgasim;

namespace {

std::string human(long v) {
  char buf[32];
  if (v >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.1f G", v / 1e9);
  } else if (v >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1f M", v / 1e6);
  } else if (v >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f K", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%ld", v);
  }
  return buf;
}

}  // namespace

int main() {
  const CnnModel lenet = make_lenet5();
  const CnnModel vgg = make_vgg16();
  const auto ls = lenet.stats();
  const auto vs = vgg.stats();

  Table table("Table I: computational hardware resources (ours vs paper)");
  table.set_header({"", "LeNet-5 (ours)", "LeNet-5 (paper)", "VGG-16 (ours)",
                    "VGG-16 (paper)"});
  table.add_row({"# CONV layers", std::to_string(ls.conv_layers), "2",
                 std::to_string(vs.conv_layers), "16*"});
  table.add_row({"CONV weights", human(ls.conv_weights), "26 K", human(vs.conv_weights),
                 "14.7 M"});
  table.add_row({"CONV MACs", human(ls.conv_macs), "1.9 M", human(vs.conv_macs), "15.3 G"});
  table.add_row({"# FC layers", std::to_string(ls.fc_layers), "2",
                 std::to_string(vs.fc_layers), "3"});
  table.add_row({"FC weights", human(ls.fc_weights), "406 K", human(vs.fc_weights), "124 M"});
  table.add_row({"FC MACs", human(ls.fc_macs), "405 K", human(vs.fc_macs), "124 M"});
  table.add_row({"Total weights", human(ls.total_weights()), "431 K",
                 human(vs.total_weights()), "138 M"});
  table.add_row({"Total MACs", human(ls.total_macs()), "2.3 M", human(vs.total_macs()),
                 "15.5 G"});
  table.print();
  std::puts("VGG-16 values match Table I; the paper's LeNet weight column appears ~10x");
  std::puts("the canonical LeNet-5 (conv 2.6K / FC 59K parameters) which we reproduce;");
  std::puts("the paper's own per-layer counts (conv1=156, conv2=2416 params, 117600 and");
  std::puts("240000 multiplications, Sec. V-E) agree with OUR column, not with its own");
  std::puts("Table I. (*paper counts all 16 weight layers as 'CONV layers'.)");
  return 0;
}
