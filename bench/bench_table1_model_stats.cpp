// Table I: computational resources of LeNet-5 and VGG-16 (weights and
// MACs, conv vs. fully-connected). Pure model accounting; printed next to
// the paper's reported values — plus the same accounting and the
// stitch-share measurement (paper band 5-9%) for the zoo models added
// after the paper's two (MobileNet / ResNet-18 / U-Net), merged into
// BENCH_dfg.json.
#include "bench_common.h"
#include "cnn/zoo.h"

using namespace fpgasim;
using namespace fpgasim::bench;

namespace {

std::string human(long v) {
  char buf[32];
  if (v >= 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.1f G", v / 1e9);
  } else if (v >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1f M", v / 1e6);
  } else if (v >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1f K", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%ld", v);
  }
  return buf;
}

}  // namespace

int main() {
  const CnnModel lenet = make_lenet5();
  const CnnModel vgg = make_vgg16();
  const auto ls = lenet.stats();
  const auto vs = vgg.stats();

  Table table("Table I: computational hardware resources (ours vs paper)");
  table.set_header({"", "LeNet-5 (ours)", "LeNet-5 (paper)", "VGG-16 (ours)",
                    "VGG-16 (paper)"});
  table.add_row({"# CONV layers", std::to_string(ls.conv_layers), "2",
                 std::to_string(vs.conv_layers), "16*"});
  table.add_row({"CONV weights", human(ls.conv_weights), "26 K", human(vs.conv_weights),
                 "14.7 M"});
  table.add_row({"CONV MACs", human(ls.conv_macs), "1.9 M", human(vs.conv_macs), "15.3 G"});
  table.add_row({"# FC layers", std::to_string(ls.fc_layers), "2",
                 std::to_string(vs.fc_layers), "3"});
  table.add_row({"FC weights", human(ls.fc_weights), "406 K", human(vs.fc_weights), "124 M"});
  table.add_row({"FC MACs", human(ls.fc_macs), "405 K", human(vs.fc_macs), "124 M"});
  table.add_row({"Total weights", human(ls.total_weights()), "431 K",
                 human(vs.total_weights()), "138 M"});
  table.add_row({"Total MACs", human(ls.total_macs()), "2.3 M", human(vs.total_macs()),
                 "15.5 G"});
  table.print();
  std::puts("VGG-16 values match Table I; the paper's LeNet weight column appears ~10x");
  std::puts("the canonical LeNet-5 (conv 2.6K / FC 59K parameters) which we reproduce;");
  std::puts("the paper's own per-layer counts (conv1=156, conv2=2416 params, 117600 and");
  std::puts("240000 multiplications, Sec. V-E) agree with OUR column, not with its own");
  std::puts("Table I. (*paper counts all 16 weight layers as 'CONV layers'.)");

  // The zoo models beyond the paper's two: same model accounting (the
  // registry's weight/MAC functors put depthwise convs in the CONV
  // bucket), then the stitch-share measurement the paper reports as 5-9%
  // of the online flow, merged into BENCH_dfg.json.
  const char* extra[] = {"mobilenet", "resnet18", "unet"};
  Table models("zoo models beyond Table I: computational resources");
  models.set_header({"model", "conv layers", "conv weights", "conv MACs", "FC layers",
                     "FC weights", "FC MACs"});
  for (const char* name : extra) {
    const auto s = find_zoo_model(name)->make().stats();
    models.add_row({name, std::to_string(s.conv_layers), human(s.conv_weights),
                    human(s.conv_macs), std::to_string(s.fc_layers), human(s.fc_weights),
                    human(s.fc_macs)});
  }
  models.print();

  const Device device = make_xcku5p_sim();
  Table share("zoo models: stitch share of the online flow (paper band 5-9%)");
  share.set_header({"model", "classic flow (s)", "preimpl flow (s)", "gain",
                    "stitch share", "in band"});
  JsonWriter json;
  json.begin_object();
  for (const char* name : extra) {
    const ZooEntry* entry = find_zoo_model(name);
    const NetworkRun run =
        run_network(device, entry->make(), entry->dsp_budget, entry->max_tile);
    const double stitch = run.pre.stitch_fraction();
    const double gain = 1.0 - run.pre.total_seconds / run.mono.total_seconds;
    const bool in_band = stitch >= 0.05 && stitch <= 0.09;
    share.add_row({name, Table::fmt(run.mono.total_seconds, 3),
                   Table::fmt(run.pre.total_seconds, 3), Table::pct(gain, 0),
                   Table::pct(stitch, 1), in_band ? "yes" : "no"});
    if (!in_band) {
      std::printf("note: %s stitch share %.1f%% is outside the paper's 5-9%% band "
                  "(tiny model: fixed per-flow stages dominate)\n",
                  name, stitch * 100.0);
    }
    json.key(name).begin_object();
    json.key("classic_wall_s").value(run.mono.total_seconds);
    json.key("preimpl_wall_s").value(run.pre.total_seconds);
    json.key("productivity_gain").value(gain);
    json.key("stitch_share").value(stitch);
    json.key("stitch_in_paper_band").value(in_band);
    json.key("instances").value(static_cast<long>(run.composed.instances.size()));
    json.key("stream_edges").value(static_cast<long>(run.composed.macro_nets.size()));
    json.key("fmax_preimpl_mhz").value(run.pre.timing.fmax_mhz);
    json.key("fmax_classic_mhz").value(run.mono.timing.fmax_mhz);
    json.end_object();
  }
  json.end_object();
  share.print();
  if (update_json_file("BENCH_dfg.json", "table1_zoo_models", json.str())) {
    std::puts("wrote BENCH_dfg.json (table1_zoo_models section)");
  }
  return 0;
}
