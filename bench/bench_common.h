// Shared helpers for the paper-reproduction benchmark harnesses: each
// bench_* binary regenerates one table or figure of the paper on the
// simulated substrate and prints it next to the paper's reported values.
#pragma once

#include <array>
#include <cstdio>
#include <string>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "sim/compiled.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace fpgasim::bench {

struct NetworkRun {
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
  CheckpointDb db;
  DbBuildReport db_build;  // parallel pre-implementation wall/CPU times
  double function_opt_wall = 0.0;

  ComposedDesign composed;
  PreImplReport pre;

  MonoReport mono;
  NetlistStats flat_stats;
};

/// Builds the database (components pre-implemented in parallel on `pool`,
/// the global pool when null) and runs both flows for a model.
inline NetworkRun run_network(const Device& device, CnnModel model, long dsp_budget,
                              int max_tile = 28, ThreadPool* pool = nullptr) {
  NetworkRun run;
  run.model = std::move(model);
  run.impl = choose_implementation(run.model, dsp_budget, max_tile);
  run.groups = default_grouping(run.model);

  prepare_component_db(device, run.model, run.impl, run.groups, run.db, {}, 1000, pool,
                       &run.db_build);
  run.function_opt_wall = run.db_build.wall_seconds;

  run.pre = run_preimpl_cnn(device, run.model, run.impl, run.groups, run.db, run.composed);

  Netlist flat = build_flat_netlist(run.model, run.impl, run.groups);
  run.flat_stats = flat.stats();
  PhysState phys;
  run.mono = run_monolithic_flow(device, flat, phys);
  return run;
}

/// One interpreter-vs-compiled simulator measurement over a final netlist
/// (DESIGN.md §13). Throughput is lane-cycles/second: the interpreter
/// advances one test vector per step, the compiled engine kLanes (64).
struct SimThroughput {
  std::string workload;
  std::size_t cells = 0, nets = 0;
  int cycles = 0;
  double compile_seconds = 0.0;   // one-time Netlist -> plan compilation
  double interp_seconds = 0.0;    // `cycles` cycles, one vector
  double compiled_seconds = 0.0;  // `cycles` cycles, kLanes vectors
  double interp_cps = 0.0;        // interpreter cycles/second
  std::size_t interp_settles = 0;  // total interpreter settle sweeps
  std::size_t in_ports = 0;        // driven input ports per cycle
  double compiled_lane_cps = 0.0; // compiled lane-cycles/second
  double speedup = 0.0;           // compiled_lane_cps / interp_cps
  std::size_t levels = 0, comb_ops = 0, seq_ops = 0, state_words = 0;
  std::uint64_t compiled_cycles = 0;  // SimContext::cycle() after a rep
  std::string ab_diff;                // "" = bit-identical on the A/B check
  int reps = 0;                       // compiled timing repetitions (best-of)
  std::uint64_t plans_compiled = 0;   // SimPlan compilations this measurement
  // Fold of the observed outputs; keeps the timed loops from being
  // dead-code eliminated (never compared: lanes see different stimulus).
  std::uint64_t interp_checksum = 0, compiled_checksum = 0;

  bool ok() const {
    return ab_diff.empty() && compiled_cycles == static_cast<std::uint64_t>(cycles) &&
           plans_compiled == 1;
  }
};

/// Times the interpreter and the compiled simulator on `cycles` cycles of
/// seeded random stimulus over every input port, after first proving them
/// bit-identical on sampled lanes via the A/B oracle. The netlist is
/// compiled into a SimPlan exactly once — the A/B check and every timing
/// repetition reuse it (each rep gets a fresh context; best-of-`reps`
/// wall time is reported) — and the compile counter delta is recorded so
/// ok() can assert the reuse actually happened.
inline SimThroughput measure_sim_throughput(const Netlist& netlist,
                                            const std::string& workload, int cycles,
                                            std::uint64_t seed = 7, int ab_cycles = 12,
                                            int reps = 3) {
  SimThroughput r;
  r.workload = workload;
  r.cells = netlist.cell_count();
  r.nets = netlist.net_count();
  r.cycles = cycles;
  r.reps = reps;

  std::vector<const Port*> ins;
  const Port* first_out = nullptr;
  for (const Port& port : netlist.ports()) {
    if (port.dir == PortDir::kInput) ins.push_back(&port);
    else if (!first_out) first_out = &port;
  }

  const std::uint64_t plans_before = SimPlan::plans_compiled();
  Stopwatch compile_watch;
  const std::shared_ptr<const SimPlan> plan = SimPlan::compile(netlist);
  r.compile_seconds = compile_watch.seconds();
  r.levels = plan->levels();
  r.comb_ops = plan->comb_ops();
  r.seq_ops = plan->seq_ops();
  r.state_words = plan->context_words() + plan->shared_words();
  std::vector<int> in_idx;
  for (const Port* p : ins) in_idx.push_back(plan->input_index(p->name));
  const int out_idx = first_out ? plan->output_index(first_out->name) : -1;

  // Bit-exactness first: the throughput numbers only count if the engines
  // agree on the same workload (same plan — no recompilation).
  static constexpr std::array<int, 3> kAbLanes{0, 31, 63};
  r.ab_diff = compare_compiled_vs_interpreter(netlist, ab_cycles, seed, kAbLanes, plan);

  {
    Simulator sim(netlist);
    Rng rng(seed + 1);
    Stopwatch watch;
    for (int c = 0; c < cycles; ++c) {
      for (const Port* p : ins) sim.set_input(p->name, rng());
      sim.step();
      if (first_out) r.interp_checksum ^= sim.get_output(first_out->name);
    }
    r.interp_seconds = watch.seconds();
    r.interp_settles = sim.settles();
    r.in_ports = ins.size();
  }
  // Compiled side: best-of-`reps` to shed scheduler noise. Every rep
  // replays the identical stimulus on a fresh context of the SAME plan, so
  // checksum and cycle count are rep-invariant.
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    SimContext ctx(plan);
    Rng rng(seed + 1);
    std::array<std::uint64_t, SimPlan::kLanes> lanes;
    std::uint64_t checksum = 0;
    Stopwatch watch;
    for (int c = 0; c < cycles; ++c) {
      for (const int idx : in_idx) {
        for (std::uint64_t& v : lanes) v = rng();
        ctx.set_inputs(idx, lanes);
      }
      ctx.step();
      if (out_idx >= 0) {
        checksum ^= ctx.get_output(out_idx, static_cast<std::size_t>(c) % 64);
      }
    }
    const double secs = watch.seconds();
    if (rep == 0 || secs < r.compiled_seconds) r.compiled_seconds = secs;
    r.compiled_checksum = checksum;
    r.compiled_cycles = ctx.cycle();
  }
  r.plans_compiled = SimPlan::plans_compiled() - plans_before;
  if (r.interp_seconds > 0.0) r.interp_cps = cycles / r.interp_seconds;
  if (r.compiled_seconds > 0.0) {
    r.compiled_lane_cps =
        static_cast<double>(cycles) * CompiledSim::kLanes / r.compiled_seconds;
  }
  if (r.interp_cps > 0.0) r.speedup = r.compiled_lane_cps / r.interp_cps;
  return r;
}

inline void print_sim_throughput(const SimThroughput& r) {
  std::printf("sim throughput [%s]: %zu cells, %d cycles | interpreter %.0f cyc/s, "
              "compiled %.0f lane-cyc/s (%zu levels, %zu ops, best of %d reps, "
              "%llu plan compile%s) -> %.1fx%s\n",
              r.workload.c_str(), r.cells, r.cycles, r.interp_cps, r.compiled_lane_cps,
              r.levels, r.comb_ops + r.seq_ops, r.reps,
              static_cast<unsigned long long>(r.plans_compiled),
              r.plans_compiled == 1 ? "" : "s (EXPECTED 1)", r.speedup,
              r.ab_diff.empty() ? "" : "  A/B DIVERGED");
  if (!r.ab_diff.empty()) std::fprintf(stderr, "FAIL %s: %s\n", r.workload.c_str(),
                                       r.ab_diff.c_str());
  // Lazy-settle note: set_input() used to re-settle the whole fabric per
  // call, costing (ports + 1) sweeps/cycle on this stream; the dirty flag
  // makes it 2 (pre-edge + observed post-edge) regardless of port count.
  if (r.cycles > 0) {
    std::printf("  interpreter settles: %zu (%.1f/cycle over %zu input ports; "
                "eager set_input would sweep %zu/cycle)\n",
                r.interp_settles,
                static_cast<double>(r.interp_settles) / r.cycles, r.in_ports,
                r.in_ports + 1);
  }
}

/// Emits one BENCH_sim.json section value for a measurement.
inline void emit_sim_throughput(JsonWriter& json, const SimThroughput& r) {
  json.begin_object();
  json.key("workload").value(r.workload);
  json.key("cells").value(r.cells);
  json.key("nets").value(r.nets);
  json.key("cycles").value(r.cycles);
  json.key("levels").value(r.levels);
  json.key("comb_ops").value(r.comb_ops);
  json.key("seq_ops").value(r.seq_ops);
  json.key("state_words").value(r.state_words);
  json.key("lanes").value(CompiledSim::kLanes);
  json.key("compile_seconds").value(r.compile_seconds);
  json.key("interpreter_seconds").value(r.interp_seconds);
  json.key("compiled_seconds").value(r.compiled_seconds);
  json.key("interpreter_cycles_per_sec").value(r.interp_cps);
  json.key("interpreter_settles").value(r.interp_settles);
  json.key("input_ports").value(r.in_ports);
  json.key("compiled_lane_cycles_per_sec").value(r.compiled_lane_cps);
  json.key("speedup").value(r.speedup);
  json.key("bit_identical").value(r.ab_diff.empty());
  json.key("compiled_cycles_run").value(static_cast<std::size_t>(r.compiled_cycles));
  json.key("reps").value(static_cast<std::size_t>(r.reps));
  json.key("plans_compiled").value(static_cast<std::size_t>(r.plans_compiled));
  json.end_object();
}

inline std::string pct_of(std::int64_t used, std::int64_t total) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld (%.2f%%)", static_cast<long long>(used),
                100.0 * static_cast<double>(used) / static_cast<double>(total));
  return buf;
}

}  // namespace fpgasim::bench
