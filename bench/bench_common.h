// Shared helpers for the paper-reproduction benchmark harnesses: each
// bench_* binary regenerates one table or figure of the paper on the
// simulated substrate and prints it next to the paper's reported values.
#pragma once

#include <cstdio>
#include <string>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "util/table.h"
#include "util/timer.h"

namespace fpgasim::bench {

struct NetworkRun {
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
  CheckpointDb db;
  DbBuildReport db_build;  // parallel pre-implementation wall/CPU times
  double function_opt_wall = 0.0;

  ComposedDesign composed;
  PreImplReport pre;

  MonoReport mono;
  NetlistStats flat_stats;
};

/// Builds the database (components pre-implemented in parallel on `pool`,
/// the global pool when null) and runs both flows for a model.
inline NetworkRun run_network(const Device& device, CnnModel model, long dsp_budget,
                              int max_tile = 28, ThreadPool* pool = nullptr) {
  NetworkRun run;
  run.model = std::move(model);
  run.impl = choose_implementation(run.model, dsp_budget, max_tile);
  run.groups = default_grouping(run.model);

  prepare_component_db(device, run.model, run.impl, run.groups, run.db, {}, 1000, pool,
                       &run.db_build);
  run.function_opt_wall = run.db_build.wall_seconds;

  run.pre = run_preimpl_cnn(device, run.model, run.impl, run.groups, run.db, run.composed);

  Netlist flat = build_flat_netlist(run.model, run.impl, run.groups);
  run.flat_stats = flat.stats();
  PhysState phys;
  run.mono = run_monolithic_flow(device, flat, phys);
  return run;
}

inline std::string pct_of(std::int64_t used, std::int64_t total) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld (%.2f%%)", static_cast<long long>(used),
                100.0 * static_cast<double>(used) / static_cast<double>(total));
  return buf;
}

}  // namespace fpgasim::bench
