// Ablation B (Sec. IV-A2, "strategic port planning"): partition pins on
// the pblock boundary vs. unplanned (random interior) pins, measured on
// the standalone component and on a two-component composition.
#include "bench_common.h"
#include "flow/ooc.h"
#include "flow/preimpl.h"
#include "synth/layers.h"

using namespace fpgasim;

namespace {

Netlist conv_block(const std::string& name) {
  ConvParams p;
  p.name = name;
  p.in_c = 2;
  p.out_c = 4;
  p.kernel = 3;
  p.in_h = 10;
  p.in_w = 10;
  p.ic_par = 2;
  p.oc_par = 2;
  p.materialize_roms = false;
  return make_conv_component(p, {}, {});
}

}  // namespace

int main() {
  const Device device = make_xcku5p_sim();
  Table table("Ablation B: partition-pin port planning");
  table.set_header({"port planning", "component Fmax (MHz)",
                    "2-chain composed Fmax (MHz)", "inter-comp route wirelength"});

  for (const bool planned : {true, false}) {
    OocOptions opt;
    opt.port_planning = planned;
    opt.seed = 23;
    const OocResult a = implement_ooc(device, conv_block("a"), opt);
    const OocResult b = implement_ooc(device, conv_block("b"), opt);
    ComposedDesign composed;
    const PreImplReport report = run_preimpl_flow(
        device, {&a.checkpoint, &b.checkpoint}, {"a0", "b0"}, composed);
    table.add_row({planned ? "boundary (planned)" : "random interior",
                   Table::fmt(std::min(a.timing.fmax_mhz, b.timing.fmax_mhz), 1),
                   Table::fmt(report.timing.fmax_mhz, 1),
                   Table::fmt(report.route.total_wirelength, 0)});
  }
  table.print();
  std::puts("paper: 'failure to plan the location of the ports ... may result in long");
  std::puts("compilation time, poor performance, and high congestion'. On this substrate");
  std::puts("the effect is mild for small 2-component chains; it grows with chain length");
  std::puts("and congestion (the router negotiates around bad pins at wirelength cost).");
  return 0;
}
