// Ablation E (paper Sec. III): the two accelerator classes the paper
// surveys, head to head on the same layer — the memory-based CLE (SIMD
// style: banked feature maps, folded MAC sweep) vs. the streaming engine
// (line buffers + fully parallel MAC array). Trade: throughput per DSP.
#include "bench_common.h"
#include "flow/ooc.h"
#include "synth/layers.h"
#include "synth/streaming_conv.h"

using namespace fpgasim;

int main() {
  const Device device = make_xcku5p_sim();
  const int in_c = 2, out_c = 4, K = 3, H = 12, W = 12;
  const auto weights = synth_params(static_cast<std::size_t>(out_c) * in_c * K * K, 7);
  const auto bias = synth_params(static_cast<std::size_t>(out_c), 8);

  Table table("Ablation E: memory-based CLE vs streaming engine (conv 2->4, k3, 12x12)");
  table.set_header({"architecture", "Fmax (MHz)", "DSP", "BRAM", "LUT",
                    "cycles / output pixel", "pblock"});

  {
    ConvParams p;
    p.in_c = in_c;
    p.out_c = out_c;
    p.kernel = K;
    p.in_h = H;
    p.in_w = W;
    p.ic_par = 2;
    p.oc_par = 2;
    const OocResult r = implement_ooc(device, make_conv_component(p, weights, bias));
    const ResourceVec res = r.checkpoint.netlist.stats().resources;
    const double cpp = static_cast<double>(p.compute_cycles()) /
                       (static_cast<double>(p.out_h()) * p.out_w());
    table.add_row({"memory-based CLE (2x2 PEs)", Table::fmt(r.timing.fmax_mhz, 1),
                   std::to_string(res.dsp), std::to_string(res.bram),
                   std::to_string(res.lut), Table::fmt(cpp, 1),
                   r.checkpoint.pblock.to_string()});
  }
  {
    StreamingConvParams p;
    p.in_c = in_c;
    p.out_c = out_c;
    p.kernel = K;
    p.in_w = W;
    const OocResult r =
        implement_ooc(device, make_streaming_conv_component(p, weights, bias));
    const ResourceVec res = r.checkpoint.netlist.stats().resources;
    table.add_row({"streaming (line buffers)", Table::fmt(r.timing.fmax_mhz, 1),
                   std::to_string(res.dsp), std::to_string(res.bram),
                   std::to_string(res.lut), "1.0", r.checkpoint.pblock.to_string()});
  }
  table.print();
  std::puts("paper Sec. III: streaming accelerators 'always tailor the hardware to the");
  std::puts("target network' for maximum throughput; the CLE folds the MAC sweep over");
  std::puts("far fewer DSPs at banked-BRAM cost. Both are built from the same primitive");
  std::puts("library and both run through the same pre-implemented flow.");
  return 0;
}
