// Table II: FPGA resource utilization of LeNet and VGG-16, classic
// implementation vs. pre-implemented flow (absolute + % of device).
#include "bench_common.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Device device = make_xcku5p_sim();
  const ResourceVec total = device.total();

  NetworkRun lenet = run_network(device, make_lenet5(), 200);
  NetworkRun vgg = run_network(device, make_vgg16(), quick ? 384 : 1024, 14);

  Table table("Table II: FPGA resource utilization (classic vs pre-implemented)");
  table.set_header({"design", "CLB LUTs", "CLB Registers", "BRAMs", "DSPs"});
  auto row = [&](const std::string& name, const ResourceVec& res) {
    table.add_row({name, pct_of(res.lut, total.lut), pct_of(res.ff, total.ff),
                   pct_of(res.bram, total.bram), pct_of(res.dsp, total.dsp)});
  };
  row("LeNet (classic)", lenet.mono.stats.resources);
  row("LeNet (pre-implemented)", lenet.pre.stats.resources);
  row("VGG-16 (classic)", vgg.mono.stats.resources);
  row("VGG-16 (pre-implemented)", vgg.pre.stats.resources);
  table.print();

  Table paper("Table II as reported by the paper (for reference)");
  paper.set_header({"design", "CLB LUTs", "CLB Registers", "BRAMs", "DSPs"});
  paper.add_row({"LeNet (classic)", "32021 (9.65%)", "8538 (1.29%)", "463 (21.44%)",
                 "144 (5.21%)"});
  paper.add_row({"LeNet (pre-implemented)", "29491 (8.89%)", "8442 (1.26%)",
                 "457 (21.16%)", "144 (5.21%)"});
  paper.add_row({"VGG-16 (classic)", "282870 (85.28%)", "215763 (32.53%)", "854 (38.54%)",
                 "2116 (76.66%)"});
  paper.add_row({"VGG-16 (pre-implemented)", "261321 (78.79%)", "180754 (27.25%)",
                 "786 (36.39%)", "2123 (76.92%)"});
  paper.print();
  std::puts("shape check: pre-implemented <= classic in LUT/FF (classic pays phys-opt");
  std::puts("register insertion + driver replication), identical DSP MAC arrays.");
  std::printf("LeNet classic/pre LUT delta: %lld, FF delta: %lld\n",
              static_cast<long long>(lenet.mono.stats.resources.lut -
                                     lenet.pre.stats.resources.lut),
              static_cast<long long>(lenet.mono.stats.resources.ff -
                                     lenet.pre.stats.resources.ff));
  return 0;
}
