// Ablation D: cluster-size sweep for the baseline (classic) flow's
// placer — the quality/runtime knob commercial tools turn internally.
// Smaller clusters give the annealer finer moves (better HPWL/Fmax) at
// higher placement cost.
#include "bench_common.h"
#include "place/place.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main() {
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 200);
  const auto groups = default_grouping(model);

  Table table("Ablation D: baseline flow cluster-size sweep (LeNet)");
  table.set_header({"cluster size", "clusters", "place time (s)", "route time (s)",
                    "Fmax (MHz)"});
  for (int size : {1, 8, 24, 64, 200}) {
    Netlist flat = build_flat_netlist(model, impl, groups);
    const Clustering clustering = cluster_netlist(flat, size);
    PhysState phys;
    MonoOptions opt;
    opt.cluster_size = size;
    opt.phys_opt = false;  // isolate the placement effect
    const MonoReport report = run_monolithic_flow(device, flat, phys, opt);
    table.add_row({std::to_string(size), std::to_string(clustering.num_clusters),
                   Table::fmt(report.place_seconds, 2),
                   Table::fmt(report.route_seconds, 2),
                   Table::fmt(report.timing.fmax_mhz, 1)});
  }
  table.print();
  return 0;
}
