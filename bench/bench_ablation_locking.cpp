// Ablation C (Sec. IV-A2, "logic locking"): composing LeNet from locked
// checkpoints (only inter-component nets are routed) vs. unlocking
// everything and re-routing the entire design. Locking is what keeps the
// inter-component routing step small and the component QoR preserved.
#include "bench_common.h"
#include "place/place.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main() {
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, 200);
  const auto groups = default_grouping(model);
  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);

  Table table("Ablation C: logic locking of pre-implemented components");
  table.set_header({"configuration", "nets routed online", "route time (s)",
                    "Fmax (MHz)"});

  // Locked (the paper's flow).
  {
    ComposedDesign composed;
    const PreImplReport report = run_preimpl_cnn(device, model, impl, groups, db, composed);
    table.add_row({"locked (paper flow)", std::to_string(report.route.nets_routed),
                   Table::fmt(report.route_seconds, 3),
                   Table::fmt(report.timing.fmax_mhz, 1)});
  }
  // Unlocked: strip every lock and every route after composition, then
  // route the whole design from scratch (Vivado would also re-place; we
  // keep placement to isolate the routing effect).
  {
    ComposedDesign composed;
    PreImplReport report = run_preimpl_cnn(device, model, impl, groups, db, composed);
    for (NetId n = 0; n < composed.netlist.net_count(); ++n) {
      composed.netlist.net(n).routing_locked = false;
      composed.phys.routes[n] = RouteInfo{};
    }
    Stopwatch sw;
    const RouteResult route = route_design(device, composed.netlist, composed.phys);
    const double seconds = sw.seconds();
    const TimingResult timing = run_sta(composed.netlist, composed.phys, device);
    table.add_row({"unlocked (full re-route)", std::to_string(route.nets_routed),
                   Table::fmt(seconds, 3), Table::fmt(timing.fmax_mhz, 1)});
  }
  table.print();
  std::puts("paper: locking means 'the final inter-module routing with Vivado will only");
  std::puts("consider non-routed nets. This decreases compilation times and improves");
  std::puts("productivity.'");
  return 0;
}
