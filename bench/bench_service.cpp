// Compile-as-a-service benchmark (DESIGN.md §14): drives N concurrent
// compile sessions against one CheckpointStore under a zipf-weighted
// network mix and measures
//   - cold throughput: empty store, every component built exactly once
//     across all sessions (in-flight dedup),
//   - warm throughput: a fresh CheckpointStore over the same directory
//     (simulated process restart), every component resolved from disk,
//   - determinism: the composed-design fingerprint of every catalog entry
//     is byte-identical for build-pool widths 1, 2 and 8.
//
// Results land in BENCH_service.json (section "service"). Usage:
//   bench_service [--smoke] [--sessions N] [--store DIR] [--out FILE]
// --smoke trims the catalog to the quick networks for CI.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "fabric/device.h"
#include "flow/service.h"
#include "flow/store.h"
#include "util/json.h"
#include "util/latch.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fpgasim;

struct SessionSpec {
  std::string name;
  CnnModel model;
  ModelImpl impl;
  std::vector<std::vector<int>> groups;
};

/// The network mix: each entry is one (model, resource budget) point a
/// client might submit. Zipf rank == catalog order.
std::vector<SessionSpec> make_catalog(bool smoke) {
  std::vector<SessionSpec> catalog;
  const auto add = [&catalog](std::string name, CnnModel model, long dsp, int max_tile) {
    SessionSpec spec;
    spec.name = std::move(name);
    spec.impl = choose_implementation(model, dsp, max_tile);
    spec.groups = default_grouping(model);
    spec.model = std::move(model);
    catalog.push_back(std::move(spec));
  };
  add("lenet_dsp64", make_lenet5(), 64, 32);
  add("resblock_dsp64", make_resblock_net(), 64, 32);
  add("lenet_dsp48", make_lenet5(), 48, 32);
  if (!smoke) {
    add("resblock_dsp48", make_resblock_net(), 48, 32);
    add("vgg16_dsp384", make_vgg16(), 384, 14);
  }
  return catalog;
}

/// Deterministic zipf(1) assignment of catalog entries to sessions: the
/// classic skew of a compile farm, a few hot networks and a long tail.
std::vector<std::size_t> zipf_assignment(std::size_t sessions, std::size_t catalog,
                                         std::uint64_t seed) {
  std::vector<double> cumulative(catalog, 0.0);
  double total = 0.0;
  for (std::size_t rank = 0; rank < catalog; ++rank) {
    total += 1.0 / static_cast<double>(rank + 1);
    cumulative[rank] = total;
  }
  Rng rng(seed);
  std::vector<std::size_t> out;
  out.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    const double draw = rng.next_double() * total;
    std::size_t pick = catalog - 1;
    for (std::size_t rank = 0; rank < catalog; ++rank) {
      if (draw < cumulative[rank]) {
        pick = rank;
        break;
      }
    }
    out.push_back(pick);
  }
  return out;
}

struct PassResult {
  double wall_seconds = 0.0;
  std::size_t components = 0;
  std::size_t store_hits = 0;
  std::size_t built = 0;
  std::size_t dedup_waits = 0;

  double sessions_per_sec(std::size_t sessions) const {
    return wall_seconds > 0.0 ? static_cast<double>(sessions) / wall_seconds : 0.0;
  }
  double hit_rate() const {
    return components > 0 ? static_cast<double>(store_hits) / static_cast<double>(components)
                          : 0.0;
  }
};

/// Runs every assigned session on its own thread, latch-aligned so they
/// hit the service concurrently, and folds the per-session counters.
PassResult run_pass(CompileService& service, const std::vector<SessionSpec>& catalog,
                    const std::vector<std::size_t>& assignment) {
  PassResult pass;
  std::vector<CompileService::SessionResult> results(assignment.size());
  std::vector<std::string> errors(assignment.size());
  Latch start(assignment.size() + 1);
  std::vector<std::thread> threads;
  threads.reserve(assignment.size());
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    threads.emplace_back([&, s] {
      start.arrive_and_wait();
      const SessionSpec& spec = catalog[assignment[s]];
      try {
        results[s] = service.compile(spec.model, spec.impl, spec.groups);
      } catch (const std::exception& e) {
        errors[s] = e.what();
      }
    });
  }
  Stopwatch wall;
  start.arrive_and_wait();
  for (std::thread& t : threads) t.join();
  pass.wall_seconds = wall.seconds();
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    if (!errors[s].empty()) {
      throw std::runtime_error("session " + std::to_string(s) + " (" +
                               catalog[assignment[s]].name + ") failed: " + errors[s]);
    }
    pass.components += results[s].components;
    pass.store_hits += results[s].store_hits;
    pass.built += results[s].built;
    pass.dedup_waits += results[s].dedup_waits;
  }
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t sessions = 8;
  std::string store_dir;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--sessions" && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--smoke] [--sessions N] [--store DIR] "
                   "[--out FILE]\n");
      return 2;
    }
  }
  if (store_dir.empty()) {
    store_dir = (std::filesystem::temp_directory_path() / "fpgasim-bench-store").string();
    std::filesystem::remove_all(store_dir);
  }

  const Device device = make_xcku5p_sim();
  const std::vector<SessionSpec> catalog = make_catalog(smoke);
  const std::vector<std::size_t> assignment = zipf_assignment(sessions, catalog.size(), 42);
  std::map<std::string, std::size_t> mix;
  for (std::size_t pick : assignment) ++mix[catalog[pick].name];
  std::printf("bench_service: %zu sessions over %zu networks (zipf mix:", sessions,
              catalog.size());
  for (const auto& [name, count] : mix) std::printf(" %s x%zu", name.c_str(), count);
  std::printf(")\n");

  // Cold: empty directory, every unique component is built exactly once
  // across all concurrent sessions.
  StoreOptions store_opt;
  store_opt.dir = store_dir;
  PassResult cold;
  {
    CheckpointStore store(store_opt);
    CompileService service(device, store);
    cold = run_pass(service, catalog, assignment);
  }
  std::printf("cold: %zu sessions in %.2fs (%.2f/s) | %zu components, %zu built, "
              "%zu store hits, %zu dedup waits\n",
              sessions, cold.wall_seconds, cold.sessions_per_sec(sessions),
              cold.components, cold.built, cold.store_hits, cold.dedup_waits);

  // Warm: a fresh CheckpointStore over the same directory simulates a
  // process restart — the cache is empty, the disk is not.
  PassResult warm;
  {
    CheckpointStore store(store_opt);
    CompileService service(device, store);
    warm = run_pass(service, catalog, assignment);
  }
  std::printf("warm: %zu sessions in %.2fs (%.2f/s) | hit rate %.3f, %zu built\n",
              sessions, warm.wall_seconds, warm.sessions_per_sec(sessions),
              warm.hit_rate(), warm.built);
  const double speedup =
      warm.wall_seconds > 0.0 ? cold.wall_seconds / warm.wall_seconds : 0.0;
  std::printf("warm/cold speedup: %.2fx\n", speedup);

  // Determinism: every catalog entry composed at build-pool widths 1, 2
  // and 8 (each width on its own fresh store) must fingerprint equal.
  const std::vector<std::size_t> widths{1, 2, 8};
  std::vector<std::map<std::string, std::string>> prints(widths.size());
  for (std::size_t w = 0; w < widths.size(); ++w) {
    const std::string width_dir = store_dir + "-w" + std::to_string(widths[w]);
    std::filesystem::remove_all(width_dir);
    StoreOptions width_store_opt;
    width_store_opt.dir = width_dir;
    CheckpointStore store(width_store_opt);
    ThreadPool pool(widths[w]);
    ServiceOptions service_opt;
    service_opt.pool = &pool;
    CompileService service(device, store, service_opt);
    for (const SessionSpec& spec : catalog) {
      const auto result = service.compile(spec.model, spec.impl, spec.groups);
      prints[w][spec.name] = design_fingerprint(result.design);
    }
    std::filesystem::remove_all(width_dir);
  }
  bool identical = true;
  for (std::size_t w = 1; w < widths.size(); ++w) identical &= prints[w] == prints[0];
  std::printf("width determinism (1 vs 2 vs 8): %s\n", identical ? "byte-identical"
                                                                 : "DIVERGED");
  for (const auto& [name, print] : prints[0]) {
    std::printf("  %-16s %s\n", name.c_str(), print.c_str());
  }

  JsonWriter json;
  json.begin_object();
  json.key("mode").value(smoke ? "smoke" : "full");
  json.key("sessions").value(sessions);
  json.key("catalog").begin_array();
  for (const SessionSpec& spec : catalog) json.value(spec.name);
  json.end_array();
  json.key("zipf_mix").begin_object();
  for (const auto& [name, count] : mix) json.key(name).value(count);
  json.end_object();
  const auto emit_pass = [&json, sessions](const char* key, const PassResult& pass) {
    json.key(key).begin_object();
    json.key("wall_seconds").value(pass.wall_seconds);
    json.key("sessions_per_sec").value(pass.sessions_per_sec(sessions));
    json.key("components").value(pass.components);
    json.key("store_hits").value(pass.store_hits);
    json.key("built").value(pass.built);
    json.key("dedup_waits").value(pass.dedup_waits);
    json.key("hit_rate").value(pass.hit_rate());
    json.end_object();
  };
  emit_pass("cold", cold);
  emit_pass("warm", warm);
  json.key("warm_hit_rate").value(warm.hit_rate());
  json.key("warm_speedup").value(speedup);
  json.key("inflight_dedup_waits").value(cold.dedup_waits);
  json.key("widths").begin_array();
  for (std::size_t width : widths) json.value(width);
  json.end_array();
  json.key("identical_widths").value(identical);
  json.key("fingerprints").begin_object();
  for (const auto& [name, print] : prints[0]) json.key(name).value(print);
  json.end_object();
  json.end_object();
  if (!update_json_file(out_path, "service", json.str())) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  const bool ok = identical && warm.built == 0 && warm.hit_rate() >= 0.9;
  if (!ok) std::fprintf(stderr, "bench_service: FAIL (see numbers above)\n");
  return ok ? 0 : 1;
}
