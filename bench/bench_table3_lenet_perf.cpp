// Table III: LeNet performance exploration — per-component Fmax and
// latency, full-network classic implementation vs. the pre-implemented
// composition (paper: 375 MHz -> 437 MHz, 1.75x; latency essentially
// unchanged; the composed Fmax is bounded by the slowest component).
#include <cstring>

#include "bench_common.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const Device device = make_xcku5p_sim();
  NetworkRun run = run_network(device, make_lenet5(), 200);

  Table table("Table III: LeNet performance exploration");
  table.set_header({"component", "Fmax (MHz)", "cycles", "latency (us @ own Fmax)"});
  double slowest = 0.0;
  long total_cycles = 0;
  for (const auto& group : run.groups) {
    const Checkpoint* cp = run.db.get(group_signature(run.model, run.impl, group));
    const ComponentLatency lat = group_latency(run.model, run.impl, group, cp->meta.fmax_mhz);
    table.add_row({cp->netlist.name(), Table::fmt(cp->meta.fmax_mhz, 1),
                   std::to_string(lat.cycles), Table::fmt(lat.latency_us(), 2)});
    if (slowest == 0.0 || cp->meta.fmax_mhz < slowest) slowest = cp->meta.fmax_mhz;
    total_cycles += lat.cycles;
  }
  table.add_row({"full network (classic)", Table::fmt(run.mono.timing.fmax_mhz, 1),
                 std::to_string(total_cycles),
                 Table::fmt(total_cycles / run.mono.timing.fmax_mhz, 2)});
  table.add_row({"our work (pre-implemented)", Table::fmt(run.pre.timing.fmax_mhz, 1),
                 std::to_string(total_cycles),
                 Table::fmt(total_cycles / run.pre.timing.fmax_mhz, 2)});
  table.print();

  const double gain = run.pre.timing.fmax_mhz / run.mono.timing.fmax_mhz;
  std::printf("Fmax gain: %.2fx (paper: 1.75x); composed Fmax %.1f <= slowest component"
              " %.1f MHz: %s\n",
              gain, run.pre.timing.fmax_mhz, slowest,
              run.pre.timing.fmax_mhz <= slowest + 1.0 ? "bound holds" : "BOUND VIOLATED");
  std::printf("image-pipelined throughput (initiation interval = slowest component): "
              "classic %.0f img/s, pre-implemented %.0f img/s\n",
              pipeline_throughput(run.model, run.impl, run.groups,
                                  run.mono.timing.fmax_mhz),
              pipeline_throughput(run.model, run.impl, run.groups,
                                  run.pre.timing.fmax_mhz));
  std::printf("latency ratio preimpl/classic at achieved clocks: %.2fx (paper: ~1.0x,"
              " 249.7 -> 249.1 ns)\n",
              (total_cycles / run.pre.timing.fmax_mhz) /
                  (total_cycles / run.mono.timing.fmax_mhz));
  std::puts("(conv1 at 562 MHz, pool+relu 633, conv2 475, pool2 588, fc1 497, fc2 543 in");
  std::puts(" the paper; our absolute MHz differ — simulated fabric — the ordering and");
  std::puts(" bound-by-slowest behaviour are the reproduced observables.)");

  // Simulation-engine throughput (DESIGN.md §13): interpreter vs the
  // levelized bit-parallel compiled simulator on the final composed
  // netlists, A/B-checked bit-identical first. Sections merge into
  // BENCH_sim.json next to bench_fig7's vgg16 section.
  const int cycles = smoke ? 48 : 256;
  const SimThroughput lenet =
      measure_sim_throughput(run.composed.netlist, "lenet_preimpl", cycles);
  print_sim_throughput(lenet);

  NetworkRun resblock = run_network(device, make_resblock_net(), 64);
  const SimThroughput resb =
      measure_sim_throughput(resblock.composed.netlist, "resblock_preimpl", cycles);
  print_sim_throughput(resb);

  for (const SimThroughput* r : {&lenet, &resb}) {
    JsonWriter json;
    emit_sim_throughput(json, *r);
    const std::string key = r == &lenet ? "lenet" : "resblock";
    if (update_json_file("BENCH_sim.json", key, json.str())) {
      std::printf("wrote BENCH_sim.json (%s section)\n", key.c_str());
    }
  }

  bool ok = lenet.ok() && resb.ok();
  if (smoke && ok) {
    // CI smoke contract: the compiled engine really ran every cycle.
    std::printf("smoke: compiled path used (%llu + %llu cycles), bit-identical\n",
                static_cast<unsigned long long>(lenet.compiled_cycles),
                static_cast<unsigned long long>(resb.compiled_cycles));
  }
  return ok ? 0 : 1;
}
