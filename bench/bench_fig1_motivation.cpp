// Figure 1 (motivation example): compilation time and Fmax of the
// traditional flow vs. the pre-implemented flow on four applications, each
// a replicated 3x3 processing-element block (MM = matrix multiplication,
// OP = outer product, RC = Robert Cross, SM = smoothing).
//
// Reproduction: each application instantiates its PE block 9 times in a
// chain. The classic flow implements the flat 9-block netlist; the
// pre-implemented flow implements the block once OOC and assembles 9
// relocated copies. Paper shape: 5-37% compile-time gain, 8-33% Fmax gain.
#include "bench_common.h"
#include "flow/ooc.h"
#include "synth/kernels.h"

using namespace fpgasim;

int main() {
  const Device device = make_xcku5p_sim();
  constexpr int kReplicas = 9;

  Table time_table("Fig. 1a: compilation time (s), Vivado-style vs pre-implemented");
  time_table.set_header(
      {"app", "classic flow", "preimpl flow (online)", "gain", "paper gain"});
  Table fmax_table("Fig. 1b: Fmax (MHz)");
  fmax_table.set_header({"app", "classic flow", "preimpl flow", "gain", "paper gain"});

  const std::pair<KernelApp, const char*> paper[] = {
      {KernelApp::kMatrixMult, "5% / 19%"},
      {KernelApp::kOuterProduct, "18% / 33%"},
      {KernelApp::kRobertCross, "37% / 9%"},
      {KernelApp::kSmoothing, "7% / 8%"},
  };

  for (const auto& [app, paper_gains] : paper) {
    // Pre-implemented: one OOC block, replicated by relocation.
    const OocResult ooc = implement_ooc(device, make_kernel_component(app, to_string(app)));
    std::vector<const Checkpoint*> chain(kReplicas, &ooc.checkpoint);
    std::vector<std::string> names;
    for (int i = 0; i < kReplicas; ++i) {
      names.push_back(std::string(to_string(app)) + std::to_string(i));
    }
    ComposedDesign composed;
    const PreImplReport pre = run_preimpl_flow(device, chain, names, composed);

    // Classic: flat netlist of 9 blocks.
    std::vector<Netlist> blocks;
    std::vector<const Netlist*> pointers;
    for (int i = 0; i < kReplicas; ++i) {
      blocks.push_back(make_kernel_component(app, names[static_cast<std::size_t>(i)]));
    }
    for (const Netlist& block : blocks) pointers.push_back(&block);
    Netlist flat = stitch_chain(pointers, std::string(to_string(app)) + "_flat");
    PhysState phys;
    const MonoReport mono = run_monolithic_flow(device, flat, phys);

    const double time_gain = 1.0 - pre.total_seconds / mono.total_seconds;
    const double fmax_gain = pre.timing.fmax_mhz / mono.timing.fmax_mhz - 1.0;
    time_table.add_row({to_string(app), Table::fmt(mono.total_seconds, 3),
                        Table::fmt(pre.total_seconds, 3), Table::pct(time_gain, 0),
                        paper_gains});
    fmax_table.add_row({to_string(app), Table::fmt(mono.timing.fmax_mhz, 1),
                        Table::fmt(pre.timing.fmax_mhz, 1), Table::pct(fmax_gain, 0),
                        paper_gains});
  }
  time_table.print();
  fmax_table.print();
  std::puts("(paper gain column: compile-time% / Fmax% from Mandebi et al. as quoted in Fig. 1)");
  return 0;
}
