// Figure 6: design-generation time for LeNet and VGG with the classic flow
// vs. the pre-implemented flow, plus the share of the pre-implemented flow
// spent in RapidWright-style stitching (paper: 5% LeNet, 9% VGG; overall
// productivity gains 69% / 61%).
#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "util/json.h"
#include "util/rng.h"

using namespace fpgasim;
using namespace fpgasim::bench;

namespace {

/// Re-runs compose + component placement for a network so the routing
/// study can snapshot the pre-route physical state (run_network routes
/// in-place inside the flow and keeps only the report).
ComposedDesign compose_and_place(const Device& device, const NetworkRun& run) {
  Composer composer("route_bench");
  std::vector<const Checkpoint*> chain;
  for (const auto& group : run.groups) {
    chain.push_back(run.db.get(group_signature(run.model, run.impl, group)));
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    composer.add_instance(*chain[i], "inst" + std::to_string(i), i);
  }
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    composer.connect(static_cast<int>(i), static_cast<int>(i + 1));
  }
  composer.expose_input(0);
  composer.expose_output(static_cast<int>(chain.size()) - 1);
  ComposedDesign composed = std::move(composer).finish();
  const MacroPlaceResult macro =
      place_macros(device, composed.macro_items(), composed.macro_nets, MacroPlaceOptions{});
  for (std::size_t i = 0; i < composed.instances.size(); ++i) {
    composed.translate_instance(i, macro.offsets[i].first, macro.offsets[i].second);
  }
  return composed;
}

struct RouteSample {
  RouteResult result;
  double best_wall = 1e99;  // min over repeats: scheduling noise removed
  double cpu = 0.0;         // of the best run
};

RouteSample route_snapshot(const Device& device, const ComposedDesign& snapshot, int width,
                           bool incremental, int repeats) {
  ThreadPool pool(static_cast<std::size_t>(width));
  RouteOptions opt;
  opt.pool = &pool;
  opt.incremental = incremental;
  opt.max_iterations = 40;
  RouteSample sample;
  for (int r = 0; r < repeats; ++r) {
    PhysState phys = snapshot.phys;
    const RouteResult result = route_design(device, snapshot.netlist, phys, opt);
    if (result.wall_seconds < sample.best_wall) {
      sample.best_wall = result.wall_seconds;
      sample.cpu = result.cpu_seconds;
      sample.result = result;
    }
  }
  return sample;
}

/// Adds open point-to-point FF nets concentrated on the middle band of the
/// die to the composed design. Unlike lowering the channel capacity (which
/// the locked component-internal routes, implemented at full capacity,
/// can never satisfy), extra open traffic creates congestion the
/// negotiation CAN resolve — a converging multi-iteration scenario.
void add_traffic(const Device& device, ComposedDesign& design, int pairs,
                 std::uint64_t seed) {
  Rng rng(seed);
  const int w = device.width(), h = device.height();
  const int rows = 12;           // corridor height: pairs >> rows * capacity
  const int y0 = h / 2 - rows / 2;
  auto jitter = [&] { return static_cast<int>(rng.next_below(8)); };
  for (int i = 0; i < pairs; ++i) {
    Cell drv;
    drv.type = CellType::kFf;
    const CellId d = design.netlist.add_cell(std::move(drv));
    Cell snk;
    snk.type = CellType::kFf;
    const CellId s = design.netlist.add_cell(std::move(snk));
    const NetId n = design.netlist.add_net(1);
    design.netlist.connect_output(d, 0, n);
    design.netlist.connect_input(s, 0, n);
    design.phys.resize_for(design.netlist);
    design.phys.cell_loc[d] = TileCoord{16 + jitter(), y0 + i % rows};
    design.phys.cell_loc[s] = TileCoord{w - 17 - jitter(), y0 + i % rows};
  }
}

std::string rerouted_digest(const RouteResult& result) {
  std::string out;
  for (std::size_t i = 0; i < result.iteration_stats.size() && i < 8; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(result.iteration_stats[i].nets_rerouted);
  }
  if (result.iteration_stats.size() > 8) out += ",...";
  return out;
}

void json_sample(JsonWriter& json, const char* name, const RouteSample& sample) {
  json.key(name).begin_object();
  json.key("wall_s").value(sample.best_wall);
  json.key("cpu_s").value(sample.cpu);
  json.key("iterations").value(sample.result.iterations);
  json.key("nets_routed").value(sample.result.nets_routed);
  json.key("max_overuse").value(sample.result.max_overuse);
  json.key("rerouted_per_iteration").begin_array();
  for (const RouteIterationStats& s : sample.result.iteration_stats) {
    json.value(s.nets_rerouted);
  }
  json.end_array();
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Device device = make_xcku5p_sim();

  NetworkRun lenet = run_network(device, make_lenet5(), 200);
  NetworkRun vgg = run_network(device, make_vgg16(), quick ? 384 : 1024, 14);

  Table table("Fig. 6: design generation time (s)");
  table.set_header({"network", "classic flow", "preimpl flow", "gain", "paper gain",
                    "stitching share", "paper share"});
  auto row = [&](const std::string& name, const NetworkRun& run, const char* paper_gain,
                 const char* paper_share) {
    const double gain = 1.0 - run.pre.total_seconds / run.mono.total_seconds;
    table.add_row({name, Table::fmt(run.mono.total_seconds, 2),
                   Table::fmt(run.pre.total_seconds, 3), Table::pct(gain, 0), paper_gain,
                   Table::pct(run.pre.stitch_fraction(), 1), paper_share});
  };
  row("LeNet", lenet, "69%", "5%");
  row("VGG-16", vgg, "61%", "9%");
  table.print();

  Table stages("pre-implemented flow stage breakdown (s)");
  stages.set_header({"network", "stitch", "component placement", "inter-comp routing",
                     "STA", "offline function-opt (once)"});
  auto stage_row = [&](const std::string& name, const NetworkRun& run) {
    stages.add_row({name, Table::fmt(run.pre.stitch_seconds, 3),
                    Table::fmt(run.pre.place_seconds, 3),
                    Table::fmt(run.pre.route_seconds, 3),
                    Table::fmt(run.pre.sta_seconds, 3),
                    Table::fmt(run.function_opt_wall, 2)});
  };
  stage_row("LeNet", lenet);
  stage_row("VGG-16", vgg);
  stages.print();
  std::puts("note: function optimization is performed exactly once per unique component");
  std::puts("and amortized across designs (paper Sec. IV-A); it is excluded from the");
  std::puts("online generation time, matching the paper's measurement.");

  // Branching-model variant: the same productivity measurement over a
  // residual block, whose component graph carries a stream fork and a
  // two-input join. The paper's observation — stitching is a small share
  // of the online flow — must survive the generalization to DFGs.
  {
    NetworkRun res = run_network(device, make_resblock_net(), 16);
    Table dfg("branching DFG (residual block): design generation time (s)");
    dfg.set_header({"network", "classic flow", "preimpl flow", "gain",
                    "stitching share", "components", "stream edges"});
    const double gain = 1.0 - res.pre.total_seconds / res.mono.total_seconds;
    dfg.add_row({"resblock", Table::fmt(res.mono.total_seconds, 2),
                 Table::fmt(res.pre.total_seconds, 3), Table::pct(gain, 0),
                 Table::pct(res.pre.stitch_fraction(), 1),
                 std::to_string(res.composed.instances.size()),
                 std::to_string(res.composed.macro_nets.size())});
    dfg.print();
    std::printf("resblock: stitching %.1f%% of the online flow (target band 5-9%%)\n",
                res.pre.stitch_fraction() * 100.0);

    JsonWriter dfg_json;
    dfg_json.begin_object();
    dfg_json.key("resblock").begin_object();
    dfg_json.key("classic_wall_s").value(res.mono.total_seconds);
    dfg_json.key("preimpl_wall_s").value(res.pre.total_seconds);
    dfg_json.key("productivity_gain").value(gain);
    dfg_json.key("stitch_share").value(res.pre.stitch_fraction());
    dfg_json.key("stitch_s").value(res.pre.stitch_seconds);
    dfg_json.key("place_s").value(res.pre.place_seconds);
    dfg_json.key("route_s").value(res.pre.route_seconds);
    dfg_json.key("instances").value(static_cast<long>(res.composed.instances.size()));
    dfg_json.key("stream_edges").value(static_cast<long>(res.composed.macro_nets.size()));
    dfg_json.key("fmax_preimpl_mhz").value(res.pre.timing.fmax_mhz);
    dfg_json.key("fmax_classic_mhz").value(res.mono.timing.fmax_mhz);
    dfg_json.end_object();
    dfg_json.end_object();
    if (update_json_file("BENCH_dfg.json", "fig6_branching", dfg_json.str())) {
      std::puts("wrote BENCH_dfg.json (fig6_branching section)");
    }
  }

  // The offline stage itself is embarrassingly parallel (the components are
  // independent): re-build each database serially and on 4 workers and
  // report wall vs CPU seconds. The checkpoints are bit-identical either
  // way; only the wall clock moves.
  Table par("offline function optimization: serial vs parallel pre-implementation");
  par.set_header({"network", "components", "1-thread wall (s)", "4-thread wall (s)",
                  "speedup", "4-thread cpu (s)"});
  ThreadPool serial_pool(1), wide_pool(4);
  auto par_row = [&](const std::string& name, const NetworkRun& run) {
    CheckpointDb serial_db, wide_db;
    DbBuildReport serial_report, wide_report;
    prepare_component_db(device, run.model, run.impl, run.groups, serial_db, {}, 1000,
                         &serial_pool, &serial_report);
    prepare_component_db(device, run.model, run.impl, run.groups, wide_db, {}, 1000,
                         &wide_pool, &wide_report);
    par.add_row({name, std::to_string(serial_report.implemented),
                 Table::fmt(serial_report.wall_seconds, 2),
                 Table::fmt(wide_report.wall_seconds, 2),
                 Table::fmt(serial_report.wall_seconds /
                                std::max(1e-9, wide_report.wall_seconds),
                            2) + "x",
                 Table::fmt(wide_report.cpu_seconds, 2)});
  };
  par_row("LeNet", lenet);
  if (!quick) par_row("VGG-16", vgg);
  par.print();
  std::printf("hardware threads available: %u (FPGASIM_THREADS overrides the default pool)\n",
              std::thread::hardware_concurrency());

  // Inter-component routing study: the dominant online stage (paper Fig. 6
  // discussion). Snapshot the composed+placed design, then route it under
  // each configuration: serial vs 4 threads (disjoint-bbox batches), the
  // legacy full rip-up baseline, and a congested variant (extra open
  // traffic nets concentrated on the middle band of the die) where
  // incremental rip-up's shrinking worklist is visible.
  const int repeats = quick ? 2 : 3;
  const int traffic_pairs = quick ? 300 : 500;
  Table routes("inter-component routing: parallel incremental PathFinder");
  routes.set_header({"network", "config", "wall (s)", "cpu (s)", "iters", "nets",
                     "rerouted/iter"});
  JsonWriter json;
  json.begin_object();
  auto route_study = [&](const std::string& name, const NetworkRun& run) {
    const ComposedDesign snapshot = compose_and_place(device, run);
    ComposedDesign congested = snapshot;
    add_traffic(device, congested, traffic_pairs, 7);
    const RouteSample serial = route_snapshot(device, snapshot, 1, true, repeats);
    const RouteSample wide = route_snapshot(device, snapshot, 4, true, repeats);
    const RouteSample full = route_snapshot(device, snapshot, 1, false, repeats);
    const RouteSample congested1 = route_snapshot(device, congested, 1, true, repeats);
    const RouteSample congested4 = route_snapshot(device, congested, 4, true, repeats);
    const RouteSample congested_full = route_snapshot(device, congested, 1, false, repeats);
    auto route_row = [&](const char* config, const RouteSample& sample) {
      routes.add_row({name, config, Table::fmt(sample.best_wall, 4),
                      Table::fmt(sample.cpu, 4), std::to_string(sample.result.iterations),
                      std::to_string(sample.result.nets_routed),
                      rerouted_digest(sample.result)});
    };
    route_row("serial incremental", serial);
    route_row("4-thread incremental", wide);
    route_row("serial full rip-up", full);
    route_row("congested (+traffic) serial", congested1);
    route_row("congested (+traffic) 4-thread", congested4);
    route_row("congested (+traffic) full rip-up", congested_full);
    std::printf("%s: 4-thread route speedup %.2fx wall (congested %.2fx); "
                "incremental vs full rip-up %.2fx (congested %.2fx)\n",
                name.c_str(), serial.best_wall / std::max(1e-9, wide.best_wall),
                congested1.best_wall / std::max(1e-9, congested4.best_wall),
                full.best_wall / std::max(1e-9, serial.best_wall),
                congested_full.best_wall / std::max(1e-9, congested1.best_wall));

    json.key(name).begin_object();
    json_sample(json, "serial", serial);
    json_sample(json, "threads4", wide);
    json_sample(json, "full_ripup", full);
    json_sample(json, "congested_serial", congested1);
    json_sample(json, "congested_threads4", congested4);
    json_sample(json, "congested_full_ripup", congested_full);
    json.key("route_speedup_4t").value(serial.best_wall / std::max(1e-9, wide.best_wall));
    json.key("incremental_speedup_vs_full")
        .value(full.best_wall / std::max(1e-9, serial.best_wall));
    json.key("congested_incremental_speedup_vs_full")
        .value(congested_full.best_wall / std::max(1e-9, congested1.best_wall));
    json.end_object();
  };
  route_study("lenet", lenet);
  route_study("vgg16", vgg);
  json.key("hardware_threads")
      .value(static_cast<long>(std::thread::hardware_concurrency()));
  json.end_object();
  routes.print();
  if (update_json_file("BENCH_route.json", "fig6_productivity", json.str())) {
    std::puts("wrote BENCH_route.json (fig6_productivity section)");
  }
  return 0;
}
