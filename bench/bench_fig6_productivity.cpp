// Figure 6: design-generation time for LeNet and VGG with the classic flow
// vs. the pre-implemented flow, plus the share of the pre-implemented flow
// spent in RapidWright-style stitching (paper: 5% LeNet, 9% VGG; overall
// productivity gains 69% / 61%).
#include <algorithm>
#include <thread>

#include "bench_common.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Device device = make_xcku5p_sim();

  NetworkRun lenet = run_network(device, make_lenet5(), 200);
  NetworkRun vgg = run_network(device, make_vgg16(), quick ? 384 : 1024, 14);

  Table table("Fig. 6: design generation time (s)");
  table.set_header({"network", "classic flow", "preimpl flow", "gain", "paper gain",
                    "stitching share", "paper share"});
  auto row = [&](const std::string& name, const NetworkRun& run, const char* paper_gain,
                 const char* paper_share) {
    const double gain = 1.0 - run.pre.total_seconds / run.mono.total_seconds;
    table.add_row({name, Table::fmt(run.mono.total_seconds, 2),
                   Table::fmt(run.pre.total_seconds, 3), Table::pct(gain, 0), paper_gain,
                   Table::pct(run.pre.stitch_fraction(), 1), paper_share});
  };
  row("LeNet", lenet, "69%", "5%");
  row("VGG-16", vgg, "61%", "9%");
  table.print();

  Table stages("pre-implemented flow stage breakdown (s)");
  stages.set_header({"network", "stitch", "component placement", "inter-comp routing",
                     "STA", "offline function-opt (once)"});
  auto stage_row = [&](const std::string& name, const NetworkRun& run) {
    stages.add_row({name, Table::fmt(run.pre.stitch_seconds, 3),
                    Table::fmt(run.pre.place_seconds, 3),
                    Table::fmt(run.pre.route_seconds, 3),
                    Table::fmt(run.pre.sta_seconds, 3),
                    Table::fmt(run.function_opt_wall, 2)});
  };
  stage_row("LeNet", lenet);
  stage_row("VGG-16", vgg);
  stages.print();
  std::puts("note: function optimization is performed exactly once per unique component");
  std::puts("and amortized across designs (paper Sec. IV-A); it is excluded from the");
  std::puts("online generation time, matching the paper's measurement.");

  // The offline stage itself is embarrassingly parallel (the components are
  // independent): re-build each database serially and on 4 workers and
  // report wall vs CPU seconds. The checkpoints are bit-identical either
  // way; only the wall clock moves.
  Table par("offline function optimization: serial vs parallel pre-implementation");
  par.set_header({"network", "components", "1-thread wall (s)", "4-thread wall (s)",
                  "speedup", "4-thread cpu (s)"});
  ThreadPool serial_pool(1), wide_pool(4);
  auto par_row = [&](const std::string& name, const NetworkRun& run) {
    CheckpointDb serial_db, wide_db;
    DbBuildReport serial_report, wide_report;
    prepare_component_db(device, run.model, run.impl, run.groups, serial_db, {}, 1000,
                         &serial_pool, &serial_report);
    prepare_component_db(device, run.model, run.impl, run.groups, wide_db, {}, 1000,
                         &wide_pool, &wide_report);
    par.add_row({name, std::to_string(serial_report.implemented),
                 Table::fmt(serial_report.wall_seconds, 2),
                 Table::fmt(wide_report.wall_seconds, 2),
                 Table::fmt(serial_report.wall_seconds /
                                std::max(1e-9, wide_report.wall_seconds),
                            2) + "x",
                 Table::fmt(wide_report.cpu_seconds, 2)});
  };
  par_row("LeNet", lenet);
  if (!quick) par_row("VGG-16", vgg);
  par.print();
  std::printf("hardware threads available: %u (FPGASIM_THREADS overrides the default pool)\n",
              std::thread::hardware_concurrency());
  return 0;
}
