// Table IV: VGG-16 comparison with state-of-the-art accelerators. The
// literature rows are quoted constants (as in the paper); our row is
// measured on the simulated substrate.
#include "bench_common.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Device device = make_xcku5p_sim();
  NetworkRun run = run_network(device, make_vgg16(), quick ? 384 : 1024, 14);

  long total_cycles = 0;
  for (const auto& group : run.groups) {
    total_cycles += group_latency(run.model, run.impl, group, 1.0).cycles;
  }
  const double latency_ms = total_cycles / run.pre.timing.fmax_mhz / 1000.0;
  const double dsp_pct =
      100.0 * static_cast<double>(run.pre.stats.resources.dsp) / device.total().dsp;

  Table table("Table IV: VGG-16 comparison with state-of-the-art approaches");
  table.set_header({"", "Zhang et al. [?]", "Caffeine [19]", "McDanel et al. [12]",
                    "our work"});
  table.add_row({"FPGA chip", "ZC706", "Xilinx KU460", "VC707", "xcku5p_sim"});
  char fmax[32], dsp[32], lat[32];
  std::snprintf(fmax, sizeof(fmax), "%.0f MHz", run.pre.timing.fmax_mhz);
  std::snprintf(dsp, sizeof(dsp), "%.0f%%", dsp_pct);
  std::snprintf(lat, sizeof(lat), "%.2f", latency_ms);
  table.add_row({"Max. Frequency", "200 MHz", "200 MHz", "170 MHz", fmax});
  table.add_row({"Precision", "fixed 16", "fixed 16", "fixed 16", "fixed 16"});
  table.add_row({"DSP Utilization", "90%", "38%", "4%", dsp});
  table.add_row({"Latency (ms)", "40.7", "-", "2.28", lat});
  table.print();
  std::puts("paper's own row: Kintex KU060, 263 MHz, 76% DSP, 42.68 ms. As in the paper,");
  std::puts("cross-platform numbers are qualitative; McDanel et al.'s latency comes from");
  std::puts("a multiplication-free selector-accumulator design (92x fewer operations).");
  std::puts("Our absolute MHz/latency live on the simulated fabric's scale, so only the");
  std::puts("relative observable carries over: like the paper's entry, the pre-implemented");
  std::puts("flow posts the best clock of its own flow family (vs its classic baseline)");
  std::puts("while remaining far from latency-optimal designs like McDanel et al.");
  return 0;
}
