// bench_soak: traffic-scale serving soak over the model zoo (ROADMAP
// item 1). Every zoo model is composed through the pre-implemented flow,
// compiled ONCE into a SimPlan, and then served a million-vector request
// stream by the multi-context inference engine (sim/engine) at several
// thread-pool widths. Per model the bench asserts:
//   - the width sweep (FPGASIM_THREADS-equivalent pools of 1, 2 and 8)
//     produces byte-identical EngineStats fingerprints — the engine's
//     determinism contract, measured, not assumed;
//   - zero statistical-oracle failures (every Kth shard A/B'd against the
//     interpreter);
//   - exactly one plan compilation across the whole sweep (the compile
//     counter proves plan reuse across engines and widths);
//   - in full mode, >= 1M vectors actually served.
// The multi-thread speedup gate (8-thread >= 4x 1-thread on LeNet) is
// enforced only on hosts with >= 8 hardware threads — on smaller hosts the
// measured speedup is still reported, with the gate marked unenforced.
//
// Results land in BENCH_soak.json (--out to redirect), one section per
// model plus a "host" section, as a CI trend line next to BENCH_sim.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cnn/zoo.h"
#include "sim/engine/engine.h"

using namespace fpgasim;

namespace {

struct WidthRun {
  std::size_t width = 0;
  EngineStats stats;
};

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_soak.json";
  std::uint64_t vectors_override = 0;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--vectors" && i + 1 < argc) {
      vectors_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--model" && i + 1 < argc) {
      only.push_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_soak [--smoke] [--out FILE] [--vectors N] "
                   "[--model NAME ...]\n");
      return 2;
    }
  }

  // Full mode: >= 1M vectors per model (rounded up to whole batches).
  // Smoke mode: a short leg per model — same gates, CI-sized.
  const std::uint64_t vectors =
      vectors_override != 0 ? vectors_override : (smoke ? 16384 : 1000000);
  const std::vector<std::size_t> widths = {1, 2, 8};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool enforce_speedup = !smoke && hw >= 8;

  const Device device = make_xcku5p_sim();
  bool all_ok = true;

  for (const ZooEntry& entry : model_zoo()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), entry.name) == only.end()) {
      continue;
    }
    // Compose through the pre-implemented flow (the paper's fast path; the
    // monolithic baseline is covered by bench_table3/bench_fig7).
    const CnnModel model = entry.make();
    const ModelImpl impl = choose_implementation(model, entry.dsp_budget, entry.max_tile);
    const auto groups = default_grouping(model);
    CheckpointDb db;
    prepare_component_db(device, model, impl, groups, db);
    ComposedDesign composed;
    run_preimpl_cnn(device, model, impl, groups, db, composed);

    const std::uint64_t plans_before = SimPlan::plans_compiled();
    const auto plan = SimPlan::compile(composed.netlist);

    EngineOptions opt;
    opt.seed = 1;
    std::vector<WidthRun> runs;
    for (const std::size_t width : widths) {
      ThreadPool pool(width);
      opt.contexts = width;
      InferenceEngine engine(composed.netlist, plan, opt, &pool);
      runs.push_back({width, engine.serve(vectors)});
    }
    const std::uint64_t plans_compiled = SimPlan::plans_compiled() - plans_before;

    bool identical = true;
    for (const WidthRun& r : runs) {
      identical &= r.stats.fingerprint() == runs[0].stats.fingerprint();
    }
    std::uint64_t oracle_failures = 0;
    for (const WidthRun& r : runs) oracle_failures += r.stats.oracle_failures;
    const WidthRun& serial = runs.front();
    const WidthRun& wide = runs.back();
    const double speedup = serial.stats.vectors_per_sec > 0
                               ? wide.stats.vectors_per_sec / serial.stats.vectors_per_sec
                               : 0.0;

    bool ok = identical && oracle_failures == 0 && plans_compiled == 1;
    for (const WidthRun& r : runs) ok &= r.stats.ok();
    if (!smoke && vectors_override == 0) ok &= wide.stats.vectors >= 1000000;
    if (enforce_speedup && std::string(entry.name) == "lenet") ok &= speedup >= 4.0;
    all_ok &= ok;

    std::printf(
        "soak [%s]: %zu cells | %llu vectors x %zu widths | best %.0f vec/s "
        "(%.0f lane-cyc/s, width %zu) | serial %.0f vec/s | speedup %.2fx%s | "
        "oracle %llu checks, %llu failures | fingerprint %s %s | plan compiles %llu%s\n",
        entry.name, composed.netlist.cell_count(),
        static_cast<unsigned long long>(wide.stats.vectors), widths.size(),
        wide.stats.vectors_per_sec, wide.stats.lane_cycles_per_sec, wide.width,
        serial.stats.vectors_per_sec, speedup,
        enforce_speedup ? "" : " (gate unenforced: host too small)",
        static_cast<unsigned long long>(wide.stats.oracle_checks),
        static_cast<unsigned long long>(oracle_failures),
        hex64(runs[0].stats.fingerprint()).c_str(),
        identical ? "(identical across widths)" : "(WIDTHS DIVERGE)",
        static_cast<unsigned long long>(plans_compiled), ok ? "" : "  ** FAIL");
    if (!runs[0].stats.first_failure.empty()) {
      std::fprintf(stderr, "  first oracle failure: %s\n",
                   runs[0].stats.first_failure.c_str());
    }

    JsonWriter json;
    json.begin_object();
    json.key("model").value(entry.name);
    json.key("cells").value(composed.netlist.cell_count());
    json.key("vectors").value(static_cast<std::size_t>(wide.stats.vectors));
    json.key("batches").value(static_cast<std::size_t>(wide.stats.batches));
    json.key("cycles_per_batch").value(opt.cycles_per_batch);
    json.key("check_every").value(opt.check_every);
    json.key("contexts").value(wide.stats.contexts);
    json.key("lanes").value(InferenceEngine::kLanes);
    json.key("checksum").value(hex64(runs[0].stats.checksum));
    json.key("fingerprint").value(hex64(runs[0].stats.fingerprint()));
    json.key("identical_widths").value(identical);
    json.key("oracle_checks").value(static_cast<std::size_t>(wide.stats.oracle_checks));
    json.key("oracle_failures").value(static_cast<std::size_t>(oracle_failures));
    json.key("plans_compiled").value(static_cast<std::size_t>(plans_compiled));
    json.key("widths");
    json.begin_array();
    for (const WidthRun& r : runs) {
      json.begin_object();
      json.key("threads").value(r.width);
      json.key("wall_seconds").value(r.stats.wall_seconds);
      json.key("vectors_per_sec").value(r.stats.vectors_per_sec);
      json.key("lane_cycles_per_sec").value(r.stats.lane_cycles_per_sec);
      json.end_object();
    }
    json.end_array();
    json.key("sustained_vectors_per_sec").value(wide.stats.vectors_per_sec);
    json.key("sustained_lane_cycles_per_sec").value(wide.stats.lane_cycles_per_sec);
    json.key("speedup_widest_vs_serial").value(speedup);
    json.key("ok").value(ok);
    json.end_object();
    if (update_json_file(out_path, entry.name, json.str())) {
      std::printf("wrote %s (%s section)\n", out_path.c_str(), entry.name);
    }
  }

  JsonWriter host;
  host.begin_object();
  host.key("hardware_concurrency").value(static_cast<std::size_t>(hw));
  host.key("speedup_gate_enforced").value(enforce_speedup);
  host.key("smoke").value(smoke);
  host.end_object();
  update_json_file(out_path, "host", host.str());

  return all_ok ? 0 : 1;
}
