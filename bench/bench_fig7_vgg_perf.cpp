// Figure 7 (rendered as a table in the paper): VGG-16 per-component
// frequency/latency and the full-network comparison (paper: 200 MHz
// baseline vs 243 MHz pre-implemented = 1.22x, latency 55.13 -> 56.67 ms
// = 1.02x).
#include "bench_common.h"

using namespace fpgasim;
using namespace fpgasim::bench;

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg == "--smoke") quick = true;
  }
  const Device device = make_xcku5p_sim();
  NetworkRun run = run_network(device, make_vgg16(), quick ? 384 : 1024, 14);

  Table table("Fig. 7: VGG-16 performance exploration");
  table.set_header({"component", "Fmax (MHz)", "latency (ms @ own Fmax)"});
  double slowest = 0.0;
  long total_cycles = 0;
  for (const auto& group : run.groups) {
    const Checkpoint* cp = run.db.get(group_signature(run.model, run.impl, group));
    const ComponentLatency lat = group_latency(run.model, run.impl, group, cp->meta.fmax_mhz);
    table.add_row({cp->netlist.name(), Table::fmt(cp->meta.fmax_mhz, 1),
                   Table::fmt(lat.latency_us() / 1000.0, 3)});
    if (slowest == 0.0 || cp->meta.fmax_mhz < slowest) slowest = cp->meta.fmax_mhz;
    total_cycles += lat.cycles;
  }
  const double mono_ms = total_cycles / run.mono.timing.fmax_mhz / 1000.0;
  const double pre_ms = total_cycles / run.pre.timing.fmax_mhz / 1000.0;
  table.add_row({"VGG (classic)", Table::fmt(run.mono.timing.fmax_mhz, 1),
                 Table::fmt(mono_ms, 2)});
  table.add_row({"our work (pre-implemented)", Table::fmt(run.pre.timing.fmax_mhz, 1),
                 Table::fmt(pre_ms, 2)});
  table.print();

  std::printf("Fmax gain %.2fx (paper 1.22x), latency ratio %.2fx (paper 1.02x), "
              "composed %.1f <= slowest %.1f MHz: %s\n",
              run.pre.timing.fmax_mhz / run.mono.timing.fmax_mhz, pre_ms / mono_ms,
              run.pre.timing.fmax_mhz, slowest,
              run.pre.timing.fmax_mhz <= slowest + 1.0 ? "bound holds" : "BOUND VIOLATED");
  std::puts("(paper components: 300-475 MHz, baseline VGG 200 MHz, composed 243 MHz;");
  std::puts(" fabric discontinuities around IO columns stretch VGG's datapaths, which");
  std::puts(" the routing model reproduces with its IO-column crossing penalty.)");

  // Simulation-engine throughput on the composed VGG netlist (DESIGN.md
  // §13), merged into BENCH_sim.json next to bench_table3's sections.
  const SimThroughput vgg = measure_sim_throughput(
      run.composed.netlist, quick ? "vgg16_preimpl_quick" : "vgg16_preimpl",
      quick ? 16 : 24, 7, 8);
  print_sim_throughput(vgg);
  JsonWriter json;
  emit_sim_throughput(json, vgg);
  if (update_json_file("BENCH_sim.json", "vgg16", json.str())) {
    std::puts("wrote BENCH_sim.json (vgg16 section)");
  }
  return vgg.ok() ? 0 : 1;
}
