// Micro-benchmarks of the CAD substrate itself (google-benchmark):
// synthesis, clustering, annealing, routing and STA throughput on a
// LeNet-class component. These are the costs behind every row of the
// productivity figures.
#include <benchmark/benchmark.h>

#include "flow/ooc.h"
#include "place/place.h"
#include "route/router.h"
#include "synth/layers.h"
#include "timing/sta.h"

namespace fpgasim {
namespace {

ConvParams bench_conv() {
  ConvParams p;
  p.in_c = 4;
  p.out_c = 8;
  p.kernel = 3;
  p.in_h = 12;
  p.in_w = 12;
  p.ic_par = 2;
  p.oc_par = 2;
  p.materialize_roms = false;
  return p;
}

void BM_SynthesizeConv(benchmark::State& state) {
  const ConvParams p = bench_conv();
  for (auto _ : state) {
    Netlist nl = make_conv_component(p, {}, {});
    benchmark::DoNotOptimize(nl.cell_count());
  }
}
BENCHMARK(BM_SynthesizeConv);

void BM_ClusterNetlist(benchmark::State& state) {
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  for (auto _ : state) {
    Clustering clustering = cluster_netlist(nl, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(clustering.num_clusters);
  }
}
BENCHMARK(BM_ClusterNetlist)->Arg(1)->Arg(16)->Arg(64);

void BM_PlaceSa(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  const Clustering clustering = cluster_netlist(nl, 1);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  SaOptions opt;
  opt.region = Pblock{0, 0, 47, 47};
  opt.moves_per_item = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SaResult result = place_sa(device, items, nets, opt);
    benchmark::DoNotOptimize(result.final_hpwl);
  }
  state.counters["cells"] = static_cast<double>(items.size());
}
BENCHMARK(BM_PlaceSa)->Arg(40)->Arg(160);

void BM_RouteComponent(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  const Clustering clustering = cluster_netlist(nl, 1);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  SaOptions opt;
  opt.region = Pblock{0, 0, 47, 47};
  const SaResult placement = place_sa(device, items, nets, opt);
  PhysState base;
  assign_cells_to_tiles(device, nl, clustering, placement, opt, base);
  for (auto _ : state) {
    PhysState phys = base;
    for (RouteInfo& route : phys.routes) route = RouteInfo{};
    RouteResult result = route_design(device, nl, phys);
    benchmark::DoNotOptimize(result.edges_used);
  }
  state.counters["nets"] = static_cast<double>(nl.net_count());
}
BENCHMARK(BM_RouteComponent);

void BM_StaComponent(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  PhysState phys;
  phys.resize_for(nl);
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    phys.cell_loc[c] = TileCoord{static_cast<int>(c % 40), static_cast<int>(c / 40 % 40)};
  }
  for (auto _ : state) {
    TimingResult result = run_sta(nl, phys, device);
    benchmark::DoNotOptimize(result.fmax_mhz);
  }
}
BENCHMARK(BM_StaComponent);

void BM_OocComponent(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  OocOptions opt;
  opt.strategies = 1;
  for (auto _ : state) {
    OocResult result = implement_ooc(device, make_conv_component(bench_conv(), {}, {}), opt);
    benchmark::DoNotOptimize(result.timing.fmax_mhz);
  }
}
BENCHMARK(BM_OocComponent);

}  // namespace
}  // namespace fpgasim

BENCHMARK_MAIN();
