// Micro-benchmarks of the CAD substrate itself (google-benchmark):
// synthesis, clustering, annealing, routing and STA throughput on a
// LeNet-class component. These are the costs behind every row of the
// productivity figures.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "flow/ooc.h"
#include "place/place.h"
#include "route/router.h"
#include "synth/layers.h"
#include "timing/sta.h"
#include "util/json.h"

namespace fpgasim {
namespace {

ConvParams bench_conv() {
  ConvParams p;
  p.in_c = 4;
  p.out_c = 8;
  p.kernel = 3;
  p.in_h = 12;
  p.in_w = 12;
  p.ic_par = 2;
  p.oc_par = 2;
  p.materialize_roms = false;
  return p;
}

void BM_SynthesizeConv(benchmark::State& state) {
  const ConvParams p = bench_conv();
  for (auto _ : state) {
    Netlist nl = make_conv_component(p, {}, {});
    benchmark::DoNotOptimize(nl.cell_count());
  }
}
BENCHMARK(BM_SynthesizeConv);

void BM_ClusterNetlist(benchmark::State& state) {
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  for (auto _ : state) {
    Clustering clustering = cluster_netlist(nl, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(clustering.num_clusters);
  }
}
BENCHMARK(BM_ClusterNetlist)->Arg(1)->Arg(16)->Arg(64);

void BM_PlaceSa(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  const Clustering clustering = cluster_netlist(nl, 1);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  SaOptions opt;
  opt.region = Pblock{0, 0, 47, 47};
  opt.moves_per_item = static_cast<double>(state.range(0));
  for (auto _ : state) {
    SaResult result = place_sa(device, items, nets, opt);
    benchmark::DoNotOptimize(result.final_hpwl);
  }
  state.counters["cells"] = static_cast<double>(items.size());
}
BENCHMARK(BM_PlaceSa)->Arg(40)->Arg(160);

void BM_RouteComponent(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  const Clustering clustering = cluster_netlist(nl, 1);
  std::vector<PlaceItem> items;
  std::vector<PlaceNet> nets;
  build_place_model(nl, clustering, items, nets);
  SaOptions opt;
  opt.region = Pblock{0, 0, 47, 47};
  const SaResult placement = place_sa(device, items, nets, opt);
  PhysState base;
  assign_cells_to_tiles(device, nl, clustering, placement, opt, base);
  for (auto _ : state) {
    PhysState phys = base;
    for (RouteInfo& route : phys.routes) route = RouteInfo{};
    RouteResult result = route_design(device, nl, phys);
    benchmark::DoNotOptimize(result.edges_used);
  }
  state.counters["nets"] = static_cast<double>(nl.net_count());
}
BENCHMARK(BM_RouteComponent);

/// Congested corridor netlist (over channel capacity): exercises the
/// multi-iteration negotiation path of the router, where incremental
/// rip-up and bounding-box batching actually matter.
struct CongestedCorridor {
  Netlist netlist{"corridor"};
  PhysState phys;
  RouteOptions opt;

  CongestedCorridor() {
    auto cell_at = [&](TileCoord loc) {
      Cell c;
      c.type = CellType::kFf;
      const CellId id = netlist.add_cell(std::move(c));
      phys.resize_for(netlist);
      phys.cell_loc[id] = loc;
      return id;
    };
    for (int i = 0; i < 36; ++i) {
      const CellId d = cell_at(TileCoord{2, 8 + i % 8});
      const CellId s = cell_at(TileCoord{20, 8 + i % 8});
      const NetId n = netlist.add_net(1);
      netlist.connect_output(d, 0, n);
      netlist.connect_input(s, 0, n);
    }
    opt.channel_capacity = 3;
    opt.max_iterations = 80;
    opt.history_factor = 0.8;
  }
};

void BM_RouteCongested(benchmark::State& state) {
  const Device device = make_tiny_device();
  CongestedCorridor fixture;
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  RouteOptions opt = fixture.opt;
  opt.pool = &pool;
  int iterations = 0;
  for (auto _ : state) {
    PhysState phys = fixture.phys;
    RouteResult result = route_design(device, fixture.netlist, phys, opt);
    iterations = result.iterations;
    benchmark::DoNotOptimize(result.edges_used);
  }
  state.counters["negotiation_iters"] = iterations;
}
BENCHMARK(BM_RouteCongested)->Arg(1)->Arg(4);

void BM_StaComponent(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  const Netlist nl = make_conv_component(bench_conv(), {}, {});
  PhysState phys;
  phys.resize_for(nl);
  for (CellId c = 0; c < nl.cell_count(); ++c) {
    phys.cell_loc[c] = TileCoord{static_cast<int>(c % 40), static_cast<int>(c / 40 % 40)};
  }
  for (auto _ : state) {
    TimingResult result = run_sta(nl, phys, device);
    benchmark::DoNotOptimize(result.fmax_mhz);
  }
}
BENCHMARK(BM_StaComponent);

void BM_OocComponent(benchmark::State& state) {
  const Device device = make_xcku5p_sim();
  OocOptions opt;
  opt.strategies = 1;
  for (auto _ : state) {
    OocResult result = implement_ooc(device, make_conv_component(bench_conv(), {}, {}), opt);
    benchmark::DoNotOptimize(result.timing.fmax_mhz);
  }
}
BENCHMARK(BM_OocComponent);

/// Machine-readable routing numbers for the perf trajectory across PRs:
/// the congested corridor at 1 and 4 threads, incremental vs full rip-up.
void write_route_json() {
  const Device device = make_tiny_device();
  CongestedCorridor fixture;
  JsonWriter json;
  json.begin_object();
  auto sample = [&](const char* name, int width, bool incremental) {
    ThreadPool pool(static_cast<std::size_t>(width));
    RouteOptions opt = fixture.opt;
    opt.pool = &pool;
    opt.incremental = incremental;
    RouteResult best;
    for (int r = 0; r < 3; ++r) {
      PhysState phys = fixture.phys;
      RouteResult result = route_design(device, fixture.netlist, phys, opt);
      if (r == 0 || result.wall_seconds < best.wall_seconds) best = std::move(result);
    }
    json.key(name).begin_object();
    json.key("wall_s").value(best.wall_seconds);
    json.key("cpu_s").value(best.cpu_seconds);
    json.key("iterations").value(best.iterations);
    json.key("nets_routed").value(best.nets_routed);
    json.key("max_overuse").value(best.max_overuse);
    json.key("rerouted_per_iteration").begin_array();
    for (const RouteIterationStats& s : best.iteration_stats) json.value(s.nets_rerouted);
    json.end_array();
    json.end_object();
  };
  sample("congested_serial", 1, true);
  sample("congested_threads4", 4, true);
  sample("congested_full_ripup", 1, false);
  json.end_object();
  if (update_json_file("BENCH_route.json", "micro_cad", json.str())) {
    std::puts("wrote BENCH_route.json (micro_cad section)");
  }
}

}  // namespace
}  // namespace fpgasim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fpgasim::write_route_json();
  return 0;
}
