// Component library curation: pre-implements a small catalog of reusable
// CNN components (the paper's "database of pre-built checkpoints"), saves
// it to disk as .fdcp files, reloads it and prints the catalog with the
// achieved QoR — the reuse story of Sec. IV-A.
#include <cstdio>
#include <string>

#include "flow/checkpoint_db.h"
#include "flow/ooc.h"
#include "synth/kernels.h"
#include "synth/layers.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace fpgasim;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/fpgasim_component_db";
  const Device device = make_xcku5p_sim();

  struct Entry {
    std::string key;
    Netlist netlist;
  };
  std::vector<Entry> catalog;
  // A spread of convolution engines...
  for (int k : {3, 5}) {
    for (int par : {1, 2, 4}) {
      ConvParams p;
      p.name = "conv" + std::to_string(k) + "x" + std::to_string(k) + "_p" +
               std::to_string(par);
      p.in_c = 4;
      p.out_c = 8;
      p.kernel = k;
      p.in_h = 16;
      p.in_w = 16;
      p.ic_par = par;
      p.oc_par = par;
      p.materialize_roms = false;
      catalog.push_back({p.name, make_conv_component(p, {}, {})});
    }
  }
  // ...pooling engines...
  for (int c : {4, 16}) {
    PoolParams p;
    p.name = "maxpool_c" + std::to_string(c);
    p.channels = c;
    p.kernel = 2;
    p.in_h = 16;
    p.in_w = 16;
    p.fuse_relu = true;
    catalog.push_back({p.name, make_pool_component(p)});
  }
  // ...and the four motivation kernels.
  for (KernelApp app : {KernelApp::kMatrixMult, KernelApp::kOuterProduct,
                        KernelApp::kRobertCross, KernelApp::kSmoothing}) {
    catalog.push_back({std::string("pe3x3_") + to_string(app),
                       make_kernel_component(app, to_string(app))});
  }

  // Function-optimize everything in parallel and fill the database.
  CheckpointDb db;
  std::mutex db_mutex;
  parallel_for(0, catalog.size(), [&](std::size_t i) {
    OocOptions opt;
    opt.seed = 11 + i;
    OocResult result = implement_ooc(device, std::move(catalog[i].netlist), opt);
    std::lock_guard<std::mutex> lock(db_mutex);
    db.put(catalog[i].key, std::move(result.checkpoint));
  });

  db.save_dir(dir);
  CheckpointDb reloaded;
  const std::size_t loaded = reloaded.load_dir(dir);
  std::printf("saved %zu checkpoints to %s, reloaded %zu\n", db.size(), dir.c_str(), loaded);

  Table table("component database catalog");
  table.set_header({"component", "Fmax (MHz)", "pblock", "LUT", "DSP", "BRAM", "impl (s)"});
  for (const std::string& key : reloaded.keys()) {
    const Checkpoint* cp = reloaded.get(key);
    const ResourceVec res = cp->netlist.stats().resources;
    table.add_row({key, Table::fmt(cp->meta.fmax_mhz, 1), cp->pblock.to_string(),
                   std::to_string(res.lut), std::to_string(res.dsp),
                   std::to_string(res.bram), Table::fmt(cp->meta.implement_seconds, 2)});
  }
  table.print();
  std::printf("total offline function-optimization time: %.2fs\n",
              reloaded.total_implement_seconds());
  return 0;
}
