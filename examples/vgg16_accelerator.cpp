// VGG-16 accelerator (paper Sec. V-B2): coefficients live off-chip; the
// Best-Fit-with-Coalescing allocator lays out weight and feature-map
// buffers in the simulated DDR, components use streamed weight buffers,
// and the pre-implemented flow assembles the network. Prints the off-chip
// memory map and the flow comparison.
#include <cstdio>

#include "alloc/best_fit.h"
#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "util/table.h"

using namespace fpgasim;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_vgg16();
  const ModelImpl impl =
      choose_implementation(model, /*dsp_budget=*/quick ? 384 : 1024, /*max_tile=*/14);
  const auto groups = default_grouping(model);

  // Off-chip coefficient + feature-map layout (Best-Fit with Coalescing).
  BestFitAllocator ddr(2ULL << 30, /*alignment=*/4096);
  Table memmap("VGG-16 off-chip memory map (Best-Fit with Coalescing)");
  memmap.set_header({"buffer", "base", "bytes"});
  for (const Layer& layer : model.layers()) {
    if (layer.weights() > 0) {
      const std::uint64_t bytes = static_cast<std::uint64_t>(layer.weights()) * 2;
      const auto base = ddr.allocate(bytes);
      memmap.add_row({layer.name + ".weights",
                      base ? "0x" + [&] {
                        char buf[32];
                        std::snprintf(buf, sizeof(buf), "%09llx",
                                      static_cast<unsigned long long>(*base));
                        return std::string(buf);
                      }()
                           : "OOM",
                      std::to_string(bytes)});
    }
  }
  // Double-buffered activations for the largest layer transition.
  long max_activation = 0;
  for (const Layer& layer : model.layers()) {
    max_activation = std::max(max_activation, layer.out_shape.volume());
  }
  for (int i = 0; i < 2; ++i) {
    const auto base = ddr.allocate(static_cast<std::uint64_t>(max_activation) * 2);
    memmap.add_row({"activations[" + std::to_string(i) + "]",
                    base ? std::to_string(*base) : "OOM",
                    std::to_string(max_activation * 2)});
  }
  memmap.print();
  std::printf("DDR used: %.1f MiB of %.1f GiB, %zu blocks, largest free %.1f MiB\n",
              ddr.used_bytes() / 1048576.0, ddr.capacity() / 1073741824.0,
              ddr.block_count(), ddr.largest_free_block() / 1048576.0);

  // Flows.
  CheckpointDb db;
  const std::size_t built = prepare_component_db(device, model, impl, groups, db);
  std::printf("function optimization: %zu unique components (of %zu groups), %.1fs\n",
              built, groups.size(), db.total_implement_seconds());

  ComposedDesign accelerator;
  const PreImplReport pre = run_preimpl_cnn(device, model, impl, groups, db, accelerator);

  Netlist flat = build_flat_netlist(model, impl, groups);
  PhysState flat_phys;
  const MonoReport mono = run_monolithic_flow(device, flat, flat_phys);

  Table cmp("VGG-16: classic vs pre-implemented");
  cmp.set_header({"metric", "classic", "pre-implemented"});
  cmp.add_row({"Fmax (MHz)", Table::fmt(mono.timing.fmax_mhz, 1),
               Table::fmt(pre.timing.fmax_mhz, 1)});
  cmp.add_row({"LUTs", std::to_string(mono.stats.resources.lut),
               std::to_string(pre.stats.resources.lut)});
  cmp.add_row({"FFs", std::to_string(mono.stats.resources.ff),
               std::to_string(pre.stats.resources.ff)});
  cmp.add_row({"DSPs", std::to_string(mono.stats.resources.dsp),
               std::to_string(pre.stats.resources.dsp)});
  cmp.add_row({"BRAMs", std::to_string(mono.stats.resources.bram),
               std::to_string(pre.stats.resources.bram)});
  cmp.add_row({"implementation time (s)", Table::fmt(mono.total_seconds, 2),
               Table::fmt(pre.total_seconds, 2)});
  cmp.print();
  std::printf("productivity gain %.0f%%, Fmax %.2fx, stitching %.1f%% of the flow\n",
              (1.0 - pre.total_seconds / mono.total_seconds) * 100.0,
              pre.timing.fmax_mhz / mono.timing.fmax_mhz, pre.stitch_fraction() * 100.0);
  return 0;
}
