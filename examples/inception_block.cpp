// Inception-style accelerator: the widest fork/join topology in the zoo.
// A conv stem fans out into FOUR parallel branches — direct 3x3, two
// 1x1-reduce-then-3x3 towers (the narrower one standing in for the
// classic 5x5 path) and a depthwise-separable dw3x3 + pw1x1 pair — that
// re-join in a single 4-input channel concat. The stream fork replicates
// one producer to four consumers and the concat interleaves four
// element streams, so this exercises the N-way ends of both join
// machineries. Both flows are gated on DRC and fpgalint, then a tensor is
// streamed through the composed design against the golden reference.
#include <cstdio>

#include "cnn/zoo.h"
#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace fpgasim;

int main(int argc, char** argv) {
  const bool run_inference = !(argc > 1 && std::string(argv[1]) == "--no-sim");
  const Device device = make_xcku5p_sim();
  const ZooEntry* entry = find_zoo_model("inception");
  const CnnModel model = entry->make();
  const ModelImpl impl = choose_implementation(model, entry->dsp_budget, entry->max_tile);
  const auto groups = default_grouping(model);

  std::printf("inception block as an arch-def (4-way fork -> concat):\n%s\n",
              to_arch_def(model).c_str());

  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);
  std::printf("component database: %zu checkpoints (%zu groups + stream fork)\n",
              db.size(), groups.size());

  PreImplOptions popt;
  popt.lint = true;
  ComposedDesign accelerator;
  const PreImplReport pre = run_preimpl_cnn(device, model, impl, groups, db,
                                            accelerator, popt);

  MonoOptions mopt;
  mopt.lint = true;
  Netlist flat = build_flat_netlist(model, impl, groups);
  PhysState flat_phys;
  const MonoReport mono = run_monolithic_flow(device, flat, flat_phys, mopt);

  Table table("inception: composed DFG instances");
  table.set_header({"instance", "pblock", "cells"});
  for (const auto& inst : accelerator.instances) {
    char pblock[48];
    std::snprintf(pblock, sizeof pblock, "(%d,%d)-(%d,%d)", inst.footprint.x0,
                  inst.footprint.y0, inst.footprint.x1, inst.footprint.y1);
    table.add_row({inst.name, pblock,
                   std::to_string(inst.cell_end - inst.cell_offset)});
  }
  table.print();
  std::printf("lint: pre-implemented %s / monolithic %s\n",
              pre.lint.summary().c_str(), mono.lint.summary().c_str());
  std::printf("stream edges stitched: %zu; Fmax pre-implemented %.1f MHz vs "
              "monolithic %.1f MHz; stitching %.1f%% of the online flow\n",
              accelerator.macro_nets.size(), pre.timing.fmax_mhz,
              mono.timing.fmax_mhz, pre.stitch_fraction() * 100.0);
  if (!pre.lint.clean() || !mono.lint.clean()) return 1;

  if (run_inference) {
    Tensor input = Tensor::zeros(4, 8, 8);
    Rng rng(8128);
    for (auto& v : input.data) {
      v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));
    }
    const auto expected = reference_inference(model, input);

    std::printf("running a 4x8x8 tensor through the composed accelerator...\n");
    Stopwatch sw;
    Simulator sim(accelerator.netlist);
    sim.set_input("out_ready", 1);
    sim.set_input("in_valid", 1);
    for (const Fixed16& v : input.data) {
      sim.set_input("in_data", static_cast<std::uint16_t>(v.raw));
      sim.step();
    }
    sim.set_input("in_valid", 0);
    std::vector<Fixed16> out;
    long guard = 0;
    while (out.size() < expected.size() && guard++ < 30000000) {
      sim.step();
      if (sim.get_output("out_valid") == 1) {
        out.push_back(Fixed16{static_cast<std::int16_t>(
            static_cast<std::uint16_t>(sim.get_output("out_data")))});
      }
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < out.size(); ++i) mismatches += (out[i] != expected[i]);
    std::printf("%zu outputs in %llu cycles (%.1fs simulated), %zu mismatches%s\n",
                out.size(), static_cast<unsigned long long>(sim.cycle()), sw.seconds(),
                mismatches,
                mismatches == 0 && out.size() == expected.size() ? " -- MATCHES GOLDEN"
                                                                 : " -- MISMATCH");
    return mismatches == 0 && out.size() == expected.size() ? 0 : 1;
  }
  return 0;
}
