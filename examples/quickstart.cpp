// Quickstart: define a small CNN with the textual architecture definition,
// pre-implement its components, compose the accelerator with the
// pre-implemented flow, and run one image through the placed-and-routed
// design — the full Figure-3 pipeline in ~60 lines of user code.
#include <cstdio>

#include "flow/build.h"
#include "flow/preimpl.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

using namespace fpgasim;

int main() {
  const Device device = make_xcku5p_sim();
  std::printf("device: %s\n", device.describe().c_str());

  // 1. CNN architecture definition (Sec. IV-B1).
  const CnnModel model = parse_arch_def(R"(network quickstart
input 2 12 12
conv c1 out=4 k=3 relu
pool p1 k=2
conv c2 out=2 k=3
)");

  // 2. Granularity exploration + implementation planning.
  const ModelImpl impl = choose_implementation(model, /*dsp_budget=*/16);
  const auto groups = default_grouping(model);

  // 3. Function optimization: pre-implement each component OOC once.
  CheckpointDb db;
  const std::size_t built = prepare_component_db(device, model, impl, groups, db);
  std::printf("function optimization: %zu components built, %.2fs total\n", built,
              db.total_implement_seconds());

  // 4. Architecture optimization: match, stitch, relocate, route.
  ComposedDesign accelerator;
  const PreImplReport report =
      run_preimpl_cnn(device, model, impl, groups, db, accelerator);

  Table table("quickstart accelerator");
  table.set_header({"metric", "value"});
  table.add_row({"components", std::to_string(accelerator.instances.size())});
  table.add_row({"Fmax (MHz)", Table::fmt(report.timing.fmax_mhz, 1)});
  table.add_row({"slowest component (MHz)", Table::fmt(report.slowest_component_mhz, 1)});
  table.add_row({"LUTs", std::to_string(report.stats.resources.lut)});
  table.add_row({"DSPs", std::to_string(report.stats.resources.dsp)});
  table.add_row({"BRAMs", std::to_string(report.stats.resources.bram)});
  table.add_row({"arch. optimization (s)", Table::fmt(report.total_seconds, 3)});
  table.add_row({"stitching share", Table::pct(report.stitch_fraction(), 1)});
  table.print();

  // Every stage ran under the design rule checker; print the final verdict
  // of the post-routing pass (warnings are informational, errors throw).
  std::printf("post-route %s\n", report.drc.summary().c_str());
  for (const DrcViolation& v : report.drc.violations()) {
    std::printf("  %s\n", v.to_string().c_str());
  }

  // 5. Run one image through the composed, placed-and-routed netlist and
  // compare with the golden reference.
  Tensor image = Tensor::zeros(2, 12, 12);
  Rng rng(7);
  for (auto& v : image.data) {
    v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-50, 50)));
  }
  const auto expected = reference_inference(model, image);

  Simulator sim(accelerator.netlist);
  sim.set_input("out_ready", 1);
  sim.set_input("in_valid", 1);
  for (const Fixed16& v : image.data) {
    sim.set_input("in_data", static_cast<std::uint16_t>(v.raw));
    sim.step();
  }
  sim.set_input("in_valid", 0);
  std::vector<Fixed16> out;
  long guard = 0;
  while (out.size() < expected.size() && guard++ < 2000000) {
    sim.step();
    if (sim.get_output("out_valid") == 1) {
      out.push_back(Fixed16{static_cast<std::int16_t>(
          static_cast<std::uint16_t>(sim.get_output("out_data")))});
    }
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < out.size(); ++i) mismatches += (out[i] != expected[i]);
  std::printf("inference on hardware: %zu/%zu outputs after %ld cycles, %zu mismatches%s\n",
              out.size(), expected.size(), guard, mismatches,
              mismatches == 0 && out.size() == expected.size() ? " -- MATCHES GOLDEN MODEL"
                                                               : " -- MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
