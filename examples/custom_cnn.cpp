// Custom networks through the textual CNN architecture definition: reads a
// definition from a file (or uses a built-in default), runs both flows and
// reports the comparison. This is the user-facing entry point of the flow:
// no HDL is ever written or synthesized.
//
// Usage: custom_cnn [arch_def_file] [dsp_budget]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "util/table.h"

using namespace fpgasim;

namespace {

constexpr const char* kDefaultDef = R"(# A small edge-inference network
network edgenet
input 3 14 14
conv c1 out=8 k=3 relu
pool p1 k=2
conv c2 out=16 k=3 relu
pool p2 k=2
fc f1 out=32
fc f2 out=4
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultDef;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  const long dsp_budget = argc > 2 ? std::stol(argv[2]) : 64;

  const Device device = make_xcku5p_sim();
  const CnnModel model = parse_arch_def(text);
  std::printf("network '%s': %zu layers\n", model.name().c_str(), model.layers().size());
  const auto stats = model.stats();
  std::printf("  conv: %d layers, %ld weights, %ld MACs\n", stats.conv_layers,
              stats.conv_weights, stats.conv_macs);
  std::printf("  fc:   %d layers, %ld weights, %ld MACs\n", stats.fc_layers,
              stats.fc_weights, stats.fc_macs);

  const ModelImpl impl = choose_implementation(model, dsp_budget);
  const auto groups = default_grouping(model);

  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);

  Table components("pre-implemented components");
  components.set_header({"component", "Fmax (MHz)", "DSP", "latency (us @ own clock)"});
  for (const auto& group : groups) {
    const Checkpoint* cp = db.get(group_signature(model, impl, group));
    const ComponentLatency lat = group_latency(model, impl, group, cp->meta.fmax_mhz);
    long dsp = 0;
    for (int idx : group) dsp += impl.layers[static_cast<std::size_t>(idx)].dsp_count();
    components.add_row({cp->netlist.name(), Table::fmt(cp->meta.fmax_mhz, 1),
                        std::to_string(dsp), Table::fmt(lat.latency_us(), 2)});
  }
  components.print();

  ComposedDesign accelerator;
  const PreImplReport pre = run_preimpl_cnn(device, model, impl, groups, db, accelerator);
  Netlist flat = build_flat_netlist(model, impl, groups);
  PhysState flat_phys;
  const MonoReport mono = run_monolithic_flow(device, flat, flat_phys);

  Table cmp("flow comparison");
  cmp.set_header({"", "classic", "pre-implemented"});
  cmp.add_row({"Fmax (MHz)", Table::fmt(mono.timing.fmax_mhz, 1),
               Table::fmt(pre.timing.fmax_mhz, 1)});
  cmp.add_row({"time (s)", Table::fmt(mono.total_seconds, 2),
               Table::fmt(pre.total_seconds, 2)});
  cmp.add_row({"LUT", std::to_string(mono.stats.resources.lut),
               std::to_string(pre.stats.resources.lut)});
  cmp.add_row({"FF", std::to_string(mono.stats.resources.ff),
               std::to_string(pre.stats.resources.ff)});
  cmp.print();
  std::printf("critical path of the composed design:\n");
  for (const std::string& hop : pre.timing.critical_path) {
    std::printf("  %s\n", hop.c_str());
  }
  return 0;
}
