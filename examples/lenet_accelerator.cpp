// LeNet-5 accelerator (paper Sec. V-B1): weights hard-coded in ROM, six
// pre-implemented components (conv1, pool1+relu, conv2, pool2+relu, fc1,
// fc2). Builds the checkpoint database, runs both flows, prints the
// per-component performance exploration and runs a digit image through
// the composed accelerator.
#include <cstdio>

#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace fpgasim;

int main(int argc, char** argv) {
  const bool run_inference = !(argc > 1 && std::string(argv[1]) == "--no-sim");
  const Device device = make_xcku5p_sim();
  const CnnModel model = make_lenet5();
  const ModelImpl impl = choose_implementation(model, /*dsp_budget=*/144);
  const auto groups = default_grouping(model);

  CheckpointDb db;
  prepare_component_db(device, model, impl, groups, db);

  ComposedDesign accelerator;
  const PreImplReport pre = run_preimpl_cnn(device, model, impl, groups, db, accelerator);

  Netlist flat = build_flat_netlist(model, impl, groups);
  PhysState flat_phys;
  const MonoReport mono = run_monolithic_flow(device, flat, flat_phys);

  Table perf("LeNet performance exploration (cf. paper Table III)");
  perf.set_header({"component", "Fmax (MHz)", "cycles", "latency (us)"});
  double slowest = 0.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::string key = group_signature(model, impl, groups[g]);
    const Checkpoint* cp = db.get(key);
    const ComponentLatency lat = group_latency(model, impl, groups[g], cp->meta.fmax_mhz);
    perf.add_row({cp->netlist.name(), Table::fmt(cp->meta.fmax_mhz, 1),
                  std::to_string(lat.cycles), Table::fmt(lat.latency_us(), 2)});
    if (slowest == 0.0 || cp->meta.fmax_mhz < slowest) slowest = cp->meta.fmax_mhz;
  }
  long total_cycles = 0;
  for (const auto& group : groups) {
    total_cycles += group_latency(model, impl, group, 1.0).cycles;
  }
  perf.add_row({"classic (monolithic)", Table::fmt(mono.timing.fmax_mhz, 1),
                std::to_string(total_cycles),
                Table::fmt(total_cycles / mono.timing.fmax_mhz, 2)});
  perf.add_row({"pre-implemented", Table::fmt(pre.timing.fmax_mhz, 1),
                std::to_string(total_cycles),
                Table::fmt(total_cycles / pre.timing.fmax_mhz, 2)});
  perf.print();
  std::printf("Fmax gain: %.2fx; network bounded by slowest component (%.1f MHz)\n",
              pre.timing.fmax_mhz / mono.timing.fmax_mhz, slowest);

  if (run_inference) {
    Tensor digit = Tensor::zeros(1, 32, 32);
    Rng rng(1234);
    for (auto& v : digit.data) {
      v = Fixed16::from_raw(static_cast<std::int32_t>(rng.next_int(-40, 40)));
    }
    const auto expected = reference_inference(model, digit);

    std::printf("running one 32x32 image through the composed accelerator...\n");
    Stopwatch sw;
    Simulator sim(accelerator.netlist);
    sim.set_input("out_ready", 1);
    sim.set_input("in_valid", 1);
    for (const Fixed16& v : digit.data) {
      sim.set_input("in_data", static_cast<std::uint16_t>(v.raw));
      sim.step();
    }
    sim.set_input("in_valid", 0);
    std::vector<Fixed16> scores;
    long guard = 0;
    while (scores.size() < expected.size() && guard++ < 30000000) {
      sim.step();
      if (sim.get_output("out_valid") == 1) {
        scores.push_back(Fixed16{static_cast<std::int16_t>(
            static_cast<std::uint16_t>(sim.get_output("out_data")))});
      }
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) mismatches += (scores[i] != expected[i]);
    std::printf("10 class scores in %llu cycles (%.1fs simulated), %zu mismatches%s\n",
                static_cast<unsigned long long>(sim.cycle()), sw.seconds(), mismatches,
                mismatches == 0 && scores.size() == expected.size() ? " -- MATCHES GOLDEN"
                                                                    : " -- MISMATCH");
    return mismatches == 0 ? 0 : 1;
  }
  return 0;
}
