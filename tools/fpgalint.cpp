// fpgalint: standalone whole-netlist static analyzer.
//
// Lints `.fdcp` checkpoints (never crashes on a corrupt file: load errors
// are reported as such) or, with --model, builds one of the bundled CNN
// accelerators through the pre-implemented flow in-process and lints the
// composed design with instance (stitch-boundary) information. `--json`
// emits the machine-readable report for CI; it contains no timing, so a
// given design produces a byte-identical report regardless of
// FPGASIM_THREADS.
//
// Exit status: 0 = clean (no error-severity findings anywhere),
//              1 = at least one error-severity finding,
//              2 = usage error or a checkpoint that failed to load.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cnn/model.h"
#include "cnn/zoo.h"
#include "flow/build.h"
#include "flow/preimpl.h"
#include "lint/lint.h"
#include "netlist/checkpoint.h"
#include "util/json.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: fpgalint [options] [checkpoint.fdcp ...]\n"
               "\n"
               "options:\n"
               "  --json         emit a machine-readable JSON report on stdout\n"
               "  --waive RULE   waive a rule id (repeatable); waived findings are\n"
               "                 reported but never fail the run\n"
               "  --model NAME   lint the composed design of a bundled network\n"
               "                 (%s)\n"
               "                 built through the pre-implemented flow\n"
               "  --dsp N        DSP budget for --model (default 64)\n"
               "  --rules        print the rule table and exit\n"
               "  -h, --help     this message\n",
               fpgasim::zoo_model_names().c_str());
}

void print_rules() {
  for (const fpgasim::lint::RuleInfo& rule : fpgasim::lint::rules()) {
    std::printf("%-24s %-8s %s\n", rule.id, fpgasim::lint::to_string(rule.severity),
                rule.what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpgasim;

  bool json = false;
  std::string model_name;
  long dsp_budget = -1;  // -1: per-model default
  lint::LintOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--waive" && i + 1 < argc) {
      options.waived_rules.emplace_back(argv[++i]);
    } else if (arg == "--model" && i + 1 < argc) {
      model_name = argv[++i];
    } else if (arg == "--dsp" && i + 1 < argc) {
      dsp_budget = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--rules") {
      print_rules();
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fpgalint: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && model_name.empty()) {
    usage(stderr);
    return 2;
  }

  int exit_code = 0;
  JsonWriter out;
  if (json) out.begin_array();

  const auto deliver = [&](const lint::LintReport& report) {
    if (json) {
      out.raw(report.to_json());
    } else {
      std::printf("%s\n", report.to_string().c_str());
    }
    if (report.errors() > 0 && exit_code == 0) exit_code = 1;
  };

  for (const std::string& path : paths) {
    try {
      const Checkpoint checkpoint = load_checkpoint(path);
      lint::LintOptions per_file = options;
      deliver(lint::run(checkpoint.netlist, per_file));
    } catch (const std::exception& e) {
      // A checkpoint that cannot even be parsed is worse than one with
      // findings; report it in-band so CI sees which file and why.
      if (json) {
        JsonWriter fail;
        fail.begin_object()
            .key("design")
            .value(path)
            .key("load_error")
            .value(std::string(e.what()))
            .end_object();
        out.raw(fail.str());
      } else {
        std::fprintf(stderr, "fpgalint: %s: load failed: %s\n", path.c_str(), e.what());
      }
      exit_code = 2;
    }
  }

  if (!model_name.empty()) {
    const ZooEntry* entry = find_zoo_model(model_name);
    if (entry == nullptr) {
      std::fprintf(stderr, "fpgalint: unknown model '%s' (%s)\n", model_name.c_str(),
                   zoo_model_names().c_str());
      return 2;
    }
    const CnnModel model = entry->make();
    const int max_tile = entry->max_tile;
    if (dsp_budget < 0) dsp_budget = entry->dsp_budget;
    const Device device = make_xcku5p_sim();
    const ModelImpl impl = choose_implementation(model, dsp_budget, max_tile);
    const std::vector<std::vector<int>> groups = default_grouping(model);
    CheckpointDb db;
    prepare_component_db(device, model, impl, groups, db);
    ComposedDesign composed;
    PreImplOptions opt;
    run_preimpl_cnn(device, model, impl, groups, db, composed, opt);
    lint::LintOptions composed_opt = options;
    for (const ComposedDesign::Instance& inst : composed.instances) {
      composed_opt.instances.push_back(
          {inst.name, inst.cell_offset, inst.cell_end, inst.net_offset, inst.net_end});
    }
    deliver(lint::run(composed.netlist, composed_opt));
  }

  if (json) {
    out.end_array();
    std::printf("%s\n", out.str().c_str());
  }
  return exit_code;
}
