// simdiff: standalone compiled-vs-interpreter equivalence checker.
//
// Runs the A/B oracle (sim/compiled.h: compare_compiled_vs_interpreter)
// over a netlist — either a `.fdcp` checkpoint or one of the bundled CNN
// accelerators built in-process through the pre-implemented flow (and,
// with --mono, the monolithic baseline too). Every input port of every
// lane is re-randomized each cycle from a seeded generator, then each
// requested lane is replayed through the interpreter and every output
// port is compared pre- and post-edge.
//
// Exit status: 0 = bit-identical on every checked design,
//              1 = at least one divergence (printed),
//              2 = usage error or a design that failed to build/load.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cnn/model.h"
#include "cnn/zoo.h"
#include "flow/build.h"
#include "flow/monolithic.h"
#include "flow/preimpl.h"
#include "netlist/checkpoint.h"
#include "sim/compiled.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: simdiff [options] [checkpoint.fdcp ...]\n"
               "\n"
               "options:\n"
               "  --model NAME   check a bundled network (%s)\n"
               "                 composed through the pre-implemented flow\n"
               "  --mono         with --model, also check the monolithic baseline\n"
               "  --dsp N        DSP budget for --model (default per model)\n"
               "  --cycles N     cycles of random stimulus (default 32)\n"
               "  --vectors N    size the run in inference vectors instead: the cycle\n"
               "                 count becomes ceil(N / 64) (one 64-lane frame per\n"
               "                 cycle); overrides --cycles, for scripted long soaks\n"
               "  --seed S       stimulus seed (default 1)\n"
               "  --lanes N      interpreter replays of the 64-lane batch: 0 = all,\n"
               "                 else N evenly spread lanes (default 4)\n"
               "  -h, --help     this message\n",
               fpgasim::zoo_model_names().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpgasim;

  std::string model_name;
  bool mono = false;
  long dsp_budget = -1;
  int cycles = 32;
  std::uint64_t vectors = 0;  // 0 = use --cycles directly
  std::uint64_t seed = 1;
  int lane_count = 4;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      model_name = argv[++i];
    } else if (arg == "--mono") {
      mono = true;
    } else if (arg == "--dsp" && i + 1 < argc) {
      dsp_budget = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--cycles" && i + 1 < argc) {
      cycles = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--vectors" && i + 1 < argc) {
      vectors = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--lanes" && i + 1 < argc) {
      lane_count = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "simdiff: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && model_name.empty()) {
    usage(stderr);
    return 2;
  }
  if (vectors > 0) {
    // One cycle drives one 64-lane frame = 64 inference vectors.
    const std::uint64_t c = (vectors + 63) / 64;
    if (c > static_cast<std::uint64_t>(INT32_MAX)) {
      std::fprintf(stderr, "simdiff: --vectors %llu is too large\n",
                   static_cast<unsigned long long>(vectors));
      return 2;
    }
    cycles = static_cast<int>(c);
  }

  std::vector<int> lanes;
  if (lane_count > 0) {
    const int n = lane_count > 64 ? 64 : lane_count;
    for (int i = 0; i < n; ++i) {
      lanes.push_back(n == 1 ? 0 : i * 63 / (n - 1));
    }
  }

  int exit_code = 0;
  const auto check = [&](const Netlist& netlist, const std::string& what) {
    const std::string diff = compare_compiled_vs_interpreter(netlist, cycles, seed, lanes);
    if (diff.empty()) {
      std::printf("ok   %-28s %zu cells, %d cycles x %zu lanes, seed %llu\n",
                  what.c_str(), netlist.cell_count(), cycles,
                  lanes.empty() ? std::size_t{64} : lanes.size(),
                  static_cast<unsigned long long>(seed));
    } else {
      std::fprintf(stderr, "FAIL %s: %s\n", what.c_str(), diff.c_str());
      if (exit_code == 0) exit_code = 1;
    }
  };

  for (const std::string& path : paths) {
    try {
      const Checkpoint checkpoint = load_checkpoint(path);
      check(checkpoint.netlist, path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "simdiff: %s: load failed: %s\n", path.c_str(), e.what());
      exit_code = 2;
    }
  }

  if (!model_name.empty()) {
    const ZooEntry* entry = find_zoo_model(model_name);
    if (entry == nullptr) {
      std::fprintf(stderr, "simdiff: unknown model '%s' (%s)\n", model_name.c_str(),
                   zoo_model_names().c_str());
      return 2;
    }
    const CnnModel model = entry->make();
    const int max_tile = entry->max_tile;
    if (dsp_budget < 0) dsp_budget = entry->dsp_budget;
    try {
      const Device device = make_xcku5p_sim();
      const ModelImpl impl = choose_implementation(model, dsp_budget, max_tile);
      const std::vector<std::vector<int>> groups = default_grouping(model);
      CheckpointDb db;
      prepare_component_db(device, model, impl, groups, db);
      ComposedDesign composed;
      run_preimpl_cnn(device, model, impl, groups, db, composed);
      check(composed.netlist, model_name + " (pre-implemented)");
      if (mono) {
        Netlist flat = build_flat_netlist(model, impl, groups);
        PhysState phys;
        run_monolithic_flow(device, flat, phys);
        check(flat, model_name + " (monolithic)");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "simdiff: %s: flow failed: %s\n", model_name.c_str(), e.what());
      exit_code = 2;
    }
  }
  return exit_code;
}
