// fpgaserve: serving front-end for the multi-context inference engine.
//
// Composes a zoo model (or loads a `.fdcp` checkpoint) and serves a
// request stream of random inference vectors through sim/engine — the
// compiled plan is built once, N contexts shard the stream across the
// thread pool, and every Kth shard is statistically A/B'd against the
// interpreter oracle. `--soak` sizes the run at a million vectors.
//
// --json prints ONLY the width-invariant result object (model, vectors,
// checksum, fingerprint, oracle tallies) to stdout: running the same
// serve at FPGASIM_THREADS=1 and =4 must produce byte-identical output,
// which is exactly how the CI soak-smoke job checks the determinism
// contract. Timing goes to stderr so it never perturbs the comparison.
//
// Exit status: 0 = served with zero oracle failures,
//              1 = oracle divergence (first failure printed),
//              2 = usage error or a design that failed to build/load.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "cnn/zoo.h"
#include "flow/build.h"
#include "flow/preimpl.h"
#include "netlist/checkpoint.h"
#include "sim/engine/engine.h"
#include "util/json.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: fpgaserve --model NAME | checkpoint.fdcp [options]\n"
               "\n"
               "options:\n"
               "  --model NAME     serve a bundled network (%s)\n"
               "                   composed through the pre-implemented flow\n"
               "  --soak           serve 1,000,000 vectors (overridable by --vectors)\n"
               "  --vectors N      vectors to serve (default 65536; rounded up to\n"
               "                   whole 64-lane batches)\n"
               "  --cycles C       cycles per batch (default 32)\n"
               "  --check-every K  interpreter A/B audit every Kth shard; 0 = off\n"
               "                   (default 64)\n"
               "  --seed S         stimulus seed (default 1)\n"
               "  --contexts N     simulation contexts (default: pool width, or the\n"
               "                   FPGASIM_ENGINE_CONTEXTS environment variable)\n"
               "  --json           deterministic result object on stdout (identical\n"
               "                   across FPGASIM_THREADS widths); timing on stderr\n"
               "  -h, --help       this message\n",
               fpgasim::zoo_model_names().c_str());
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpgasim;

  std::string model_name;
  std::string path;
  bool soak = false;
  bool json_out = false;
  std::uint64_t vectors = 65536;
  bool vectors_set = false;
  EngineOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      model_name = argv[++i];
    } else if (arg == "--soak") {
      soak = true;
    } else if (arg == "--vectors" && i + 1 < argc) {
      vectors = std::strtoull(argv[++i], nullptr, 10);
      vectors_set = true;
    } else if (arg == "--cycles" && i + 1 < argc) {
      opt.cycles_per_batch = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--check-every" && i + 1 < argc) {
      opt.check_every = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--contexts" && i + 1 < argc) {
      opt.contexts = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fpgaserve: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "fpgaserve: only one checkpoint per run\n");
      return 2;
    }
  }
  if (soak && !vectors_set) vectors = 1000000;
  if (model_name.empty() == path.empty()) {  // exactly one source
    usage(stderr);
    return 2;
  }

  Netlist netlist;
  std::string what;
  try {
    if (!path.empty()) {
      Checkpoint checkpoint = load_checkpoint(path);
      netlist = std::move(checkpoint.netlist);
      what = path;
    } else {
      const ZooEntry* entry = find_zoo_model(model_name);
      if (entry == nullptr) {
        std::fprintf(stderr, "fpgaserve: unknown model '%s' (%s)\n", model_name.c_str(),
                     zoo_model_names().c_str());
        return 2;
      }
      const Device device = make_xcku5p_sim();
      const CnnModel model = entry->make();
      const ModelImpl impl =
          choose_implementation(model, entry->dsp_budget, entry->max_tile);
      const auto groups = default_grouping(model);
      CheckpointDb db;
      prepare_component_db(device, model, impl, groups, db);
      ComposedDesign composed;
      run_preimpl_cnn(device, model, impl, groups, db, composed);
      netlist = std::move(composed.netlist);
      what = model_name + " (pre-implemented)";
    }

    InferenceEngine engine(netlist, opt);
    const EngineStats stats = engine.serve(vectors);

    if (json_out) {
      JsonWriter json;
      json.begin_object();
      json.key("design").value(what);
      json.key("cells").value(netlist.cell_count());
      json.key("vectors").value(static_cast<std::size_t>(stats.vectors));
      json.key("batches").value(static_cast<std::size_t>(stats.batches));
      json.key("cycles_per_batch").value(opt.cycles_per_batch);
      json.key("check_every").value(opt.check_every);
      json.key("seed").value(static_cast<std::size_t>(opt.seed));
      json.key("checksum").value(hex64(stats.checksum));
      json.key("fingerprint").value(hex64(stats.fingerprint()));
      json.key("oracle_checks").value(static_cast<std::size_t>(stats.oracle_checks));
      json.key("oracle_failures").value(static_cast<std::size_t>(stats.oracle_failures));
      json.key("ok").value(stats.ok());
      json.end_object();
      std::printf("%s\n", json.str().c_str());
      std::fprintf(stderr, "served %llu vectors in %.2fs: %.0f vec/s, %zu contexts, "
                   "%zu threads\n",
                   static_cast<unsigned long long>(stats.vectors), stats.wall_seconds,
                   stats.vectors_per_sec, stats.contexts, stats.threads);
    } else {
      std::printf("serve %-28s %zu cells | %llu vectors in %llu batches "
                  "(%d cycles/batch, %zu contexts, %zu threads)\n",
                  what.c_str(), netlist.cell_count(),
                  static_cast<unsigned long long>(stats.vectors),
                  static_cast<unsigned long long>(stats.batches), opt.cycles_per_batch,
                  stats.contexts, stats.threads);
      std::printf("  sustained: %.0f vectors/s (%.0f lane-cycles/s) over %.2fs\n",
                  stats.vectors_per_sec, stats.lane_cycles_per_sec, stats.wall_seconds);
      std::printf("  oracle: %llu checks, %llu failures | checksum %s | "
                  "fingerprint %s\n",
                  static_cast<unsigned long long>(stats.oracle_checks),
                  static_cast<unsigned long long>(stats.oracle_failures),
                  hex64(stats.checksum).c_str(), hex64(stats.fingerprint()).c_str());
    }
    if (stats.oracle_failures != 0) {
      std::fprintf(stderr, "FAIL %s: %s\n", what.c_str(), stats.first_failure.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fpgaserve: %s: %s\n",
                 what.empty() ? (path.empty() ? model_name : path).c_str() : what.c_str(),
                 e.what());
    return 2;
  }
}
