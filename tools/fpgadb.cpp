// fpgadb: operations CLI over the content-addressed checkpoint store
// (src/flow/store, DESIGN.md §14).
//
//   fpgadb [--dir DIR] [--json] stats
//       index/cache health: entry count, bytes, per-kind breakdown,
//       orphan and missing files, in-process cache counters.
//   fpgadb [--dir DIR] [--json] verify
//       loads every indexed entry, re-checks its content hash against the
//       index line, DRC-gates the checkpoint and runs fpgalint over it.
//   fpgadb [--dir DIR] [--json] gc --keep-reachable MODEL[,MODEL...]
//       removes every entry not reachable from the named bundled models
//       (any cnn/zoo.h name) on the simulated device.
//
// The store directory defaults to FPGASIM_STORE_DIR. `--json` output is
// deterministic (sorted, no timing), so reports are byte-identical for
// any FPGASIM_THREADS width.
//
// Exit status: 0 = ok / clean, 1 = verify found problems (DRC or lint
// errors, hash mismatch), 2 = usage error or an entry that failed to load.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "cnn/impl.h"
#include "cnn/model.h"
#include "cnn/zoo.h"
#include "drc/drc.h"
#include "flow/build.h"
#include "flow/store.h"
#include "lint/lint.h"
#include "netlist/checkpoint.h"
#include "util/json.h"

namespace {

using namespace fpgasim;

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: fpgadb [--dir DIR] [--json] <command>\n"
               "\n"
               "commands:\n"
               "  stats                         store size, kinds, cache counters\n"
               "  verify                        hash + DRC + lint every entry\n"
               "  gc --keep-reachable MODELS    drop entries no listed model needs\n"
               "                                (MODELS: comma-separated subset of\n"
               "                                 %s)\n"
               "\n"
               "options:\n"
               "  --dir DIR   store directory (default: $FPGASIM_STORE_DIR)\n"
               "  --json      machine-readable output (deterministic)\n",
               zoo_model_names(",").c_str());
}

/// Component kind prefix of a signature ("conv", "pool", "fork", ...).
std::string kind_of(const std::string& key) {
  const std::size_t cut = key.find('_');
  return cut == std::string::npos ? key : key.substr(0, cut);
}

/// The bundled-model configurations (shared with the fpgalint CLI): the
/// store keys a model's sessions resolve are derived from these.
bool model_requests(const std::string& name, const Device& device,
                    std::vector<std::string>& keys) {
  const ZooEntry* entry = find_zoo_model(name);
  if (entry == nullptr) return false;
  const CnnModel model = entry->make();
  const ModelImpl impl = choose_implementation(model, entry->dsp_budget, entry->max_tile);
  const auto groups = default_grouping(model);
  for (const ComponentRequest& request : component_requests(model, impl, groups)) {
    keys.push_back(request.key);
  }
  (void)device;
  return true;
}

int run_stats(CheckpointStore& store, bool json) {
  const StoreStats stats = store.stats();
  std::vector<CheckpointStore::IndexEntry> entries = store.index_entries();
  std::map<std::string, std::size_t> kinds;
  for (const auto& entry : entries) ++kinds[kind_of(entry.key)];
  if (json) {
    JsonWriter out;
    out.begin_object();
    out.key("dir").value(store.dir());
    out.key("entries").value(stats.entries);
    out.key("disk_bytes").value(stats.disk_bytes);
    out.key("orphan_files").value(stats.orphan_files);
    out.key("missing_files").value(stats.missing_files);
    out.key("kinds").begin_object();
    for (const auto& [kind, count] : kinds) out.key(kind).value(count);
    out.end_object();
    out.key("cache").begin_object();
    out.key("budget_bytes").value(stats.cache_budget);
    out.key("entries").value(stats.cache_entries);
    out.key("bytes").value(stats.cache_bytes);
    out.key("hits").value(static_cast<std::size_t>(stats.hits));
    out.key("misses").value(static_cast<std::size_t>(stats.misses));
    out.key("evictions").value(static_cast<std::size_t>(stats.evictions));
    out.key("disk_loads").value(static_cast<std::size_t>(stats.disk_loads));
    out.key("puts").value(static_cast<std::size_t>(stats.puts));
    out.end_object();
    out.key("keys").begin_array();
    for (const auto& entry : entries) {
      out.begin_object();
      out.key("hash").value(entry.hash.hex());
      out.key("key").value(entry.key);
      out.key("bytes").value(entry.bytes);
      out.end_object();
    }
    out.end_array();
    out.end_object();
    std::printf("%s\n", out.str().c_str());
  } else {
    std::printf("store %s: %zu entries, %zu bytes on disk", store.dir().c_str(),
                stats.entries, stats.disk_bytes);
    if (stats.orphan_files > 0) std::printf(", %zu orphan(s)", stats.orphan_files);
    if (stats.missing_files > 0) std::printf(", %zu missing file(s)", stats.missing_files);
    std::printf("\n");
    for (const auto& [kind, count] : kinds) {
      std::printf("  %-10s %zu\n", kind.c_str(), count);
    }
    std::printf("cache: %zu/%zu bytes, %zu entries | hits %llu, misses %llu, "
                "evictions %llu, disk loads %llu\n",
                stats.cache_bytes, stats.cache_budget, stats.cache_entries,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.disk_loads));
  }
  return 0;
}

int run_verify(CheckpointStore& store, bool json) {
  int exit_code = 0;
  JsonWriter out;
  if (json) out.begin_array();
  for (const auto& entry : store.index_entries()) {
    std::string load_error;
    std::size_t drc_errors = 0, lint_errors = 0, lint_warnings = 0;
    bool hash_ok = CheckpointStore::content_hash(entry.key, entry.fabric) == entry.hash;
    if (!hash_ok && exit_code == 0) exit_code = 1;
    try {
      const Checkpoint checkpoint = load_checkpoint(entry.path);
      const DrcReport drc = run_checkpoint_drc(checkpoint);
      drc_errors = drc.errors();
      const lint::LintReport lint_report = lint::run(checkpoint.netlist);
      lint_errors = lint_report.errors();
      lint_warnings = lint_report.warnings();
      if ((drc_errors > 0 || lint_errors > 0) && exit_code == 0) exit_code = 1;
    } catch (const std::exception& e) {
      load_error = e.what();
      exit_code = 2;
    }
    if (json) {
      out.begin_object();
      out.key("hash").value(entry.hash.hex());
      out.key("key").value(entry.key);
      out.key("hash_consistent").value(hash_ok);
      if (!load_error.empty()) {
        out.key("load_error").value(load_error);
      } else {
        out.key("drc_errors").value(drc_errors);
        out.key("lint_errors").value(lint_errors);
        out.key("lint_warnings").value(lint_warnings);
      }
      out.end_object();
    } else if (!load_error.empty()) {
      std::fprintf(stderr, "fpgadb: %s (%s): load failed: %s\n", entry.key.c_str(),
                   entry.hash.hex().c_str(), load_error.c_str());
    } else {
      std::printf("%s %s: %s%zu drc error(s), %zu lint error(s), %zu lint warning(s)\n",
                  entry.hash.hex().c_str(), entry.key.c_str(),
                  hash_ok ? "" : "HASH MISMATCH, ", drc_errors, lint_errors,
                  lint_warnings);
    }
  }
  if (json) {
    out.end_array();
    std::printf("%s\n", out.str().c_str());
  }
  return exit_code;
}

int run_gc(CheckpointStore& store, const std::string& models, bool json) {
  const Device device = make_xcku5p_sim();
  const std::string fabric = fabric_signature(device);
  std::vector<std::string> keep_keys;
  std::string name;
  std::string rest = models + ",";
  for (char c : rest) {
    if (c != ',') {
      name += c;
      continue;
    }
    if (name.empty()) continue;
    if (!model_requests(name, device, keep_keys)) {
      std::fprintf(stderr, "fpgadb: unknown model '%s' (%s)\n", name.c_str(),
                   zoo_model_names().c_str());
      return 2;
    }
    name.clear();
  }
  std::vector<Hash128> keep;
  keep.reserve(keep_keys.size());
  for (const std::string& key : keep_keys) {
    keep.push_back(CheckpointStore::content_hash(key, fabric));
  }
  const std::size_t before = store.index_entries().size();
  const std::size_t removed = store.remove_unreferenced(keep);
  if (json) {
    JsonWriter out;
    out.begin_object();
    out.key("kept").value(before - removed);
    out.key("removed").value(removed);
    out.key("reachable_keys").value(keep_keys.size());
    out.end_object();
    std::printf("%s\n", out.str().c_str());
  } else {
    std::printf("gc: kept %zu, removed %zu (%zu reachable keys)\n", before - removed,
                removed, keep_keys.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool json = false;
  std::string command;
  std::string keep_models;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--keep-reachable" && i + 1 < argc) {
      keep_models = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fpgadb: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr, "fpgadb: unexpected argument '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (command.empty()) {
    usage(stderr);
    return 2;
  }
  StoreOptions options;
  options.dir = dir;
  CheckpointStore store(options);
  if (!store.persistent()) {
    std::fprintf(stderr,
                 "fpgadb: no store directory (pass --dir or set FPGASIM_STORE_DIR)\n");
    return 2;
  }
  if (command == "stats") return run_stats(store, json);
  if (command == "verify") return run_verify(store, json);
  if (command == "gc") {
    if (keep_models.empty()) {
      std::fprintf(stderr, "fpgadb: gc requires --keep-reachable MODEL[,MODEL...]\n");
      return 2;
    }
    return run_gc(store, keep_models, json);
  }
  std::fprintf(stderr, "fpgadb: unknown command '%s'\n", command.c_str());
  usage(stderr);
  return 2;
}
